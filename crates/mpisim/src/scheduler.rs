//! Rank-execution scheduling and job-wide failure propagation: the one
//! place rank threads block, and therefore the one place a dead peer or a
//! stall can be noticed.
//!
//! # Scheduling
//!
//! Both [`SimComm`](crate::SimComm) and [`ThreadComm`](crate::ThreadComm)
//! run every rank on its own OS thread — what differs is whether those
//! threads may *run concurrently*:
//!
//! * **Parallel** (the `ThreadComm` backend) never gates execution: all
//!   rank threads run whenever the OS lets them, so wall-clock reflects
//!   real parallel execution.
//! * **Serial** (the `SimComm` backend) holds a single global **run
//!   permit**: exactly one rank executes at any instant, and a rank hands
//!   the permit over only while it is blocked in a communication call
//!   (receive, barrier, collective rendezvous). This is the classic serial
//!   rank-loop simulator — wall-clock is the *sum* of per-rank work
//!   (fiction as a time-to-solution, but per-rank timings are measured
//!   interference-free), while bytes and message counts are exact and
//!   byte-identical to the parallel backend.
//!
//! The permit is cooperative, not preemptive: ranks only yield at blocking
//! communication points. That is safe here because the runtime has no
//! busy-wait loops — one-sided [`Window`](crate::Window) gets never block
//! (they read `Arc`-shared buffers directly), and every blocking primitive
//! in this crate ([`Hub::recv`](crate::p2p::Hub), blackboard exchange,
//! barrier) parks through [`Scheduler::park_until`], which releases the
//! permit before sleeping and reacquires it on wake.
//!
//! # Failure propagation
//!
//! A rank that dies leaves its peers parked in primitives waiting for
//! messages that will never arrive. The scheduler therefore carries a
//! job-wide **poison flag** (the world rank of the first failed rank,
//! first-writer-wins): [`Universe`](crate::Universe) poisons it whenever a
//! rank thread unwinds, and every park loop re-checks it (notification-free,
//! via a short [`POLL`] backstop on the condvar wait) so parked peers wake
//! and unwind with [`CommError::PeerFailed`] naming the victim instead of
//! hanging. The optional **watchdog** rides the same loop: a rank parked in
//! one primitive past the deadline dumps a who-waits-on-whom table (under
//! serial scheduling, "all ranks parked" is a *proven* deadlock — no rank
//! is runnable) and fails the job with [`CommError::Timeout`].

use crate::error::{raise, CommError, Primitive};
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often a parked rank re-checks the poison flag and its watchdog
/// deadline when no notification arrives. Pure backstop: the normal wake
/// path is still an explicit `notify_all` from the peer that makes the
/// awaited condition true.
const POLL: Duration = Duration::from_millis(25);

thread_local! {
    /// Seconds this thread has held the serial run permit (accumulated at
    /// each release), plus the start of the current holding span.
    static ACTIVE_S: Cell<f64> = const { Cell::new(0.0) };
    static ACTIVE_SINCE: Cell<Option<Instant>> = const { Cell::new(None) };
    /// World rank of the `Universe` rank thread running on this OS thread
    /// (set at launch); used to index the wait table and name poison
    /// victims.
    static WORLD_RANK: Cell<Option<usize>> = const { Cell::new(None) };
    /// Whether this thread currently holds the serial run permit. Makes
    /// [`Scheduler::release`] idempotent, so a rank that unwinds *between*
    /// handing the permit over and reacquiring it (the park-loop failure
    /// path) cannot release a permit some other rank now holds.
    static HOLDS_PERMIT: Cell<bool> = const { Cell::new(false) };
}

/// Record which world rank this thread executes (called once per rank
/// thread at launch).
pub(crate) fn set_world_rank(rank: usize) {
    WORLD_RANK.with(|c| c.set(Some(rank)));
}

/// The world rank of the current thread, if it is a `Universe` rank thread.
pub(crate) fn world_rank() -> Option<usize> {
    WORLD_RANK.with(|c| c.get())
}

/// Seconds this rank thread has spent *runnable* — holding the serial
/// backend's run permit — since it started. Under `SimComm` exactly one
/// rank runs at a time, so this is the rank's own work (compute, copies,
/// its side of communication calls), measured with zero interference:
/// time blocked in receives, barriers or collective rendezvous is *not*
/// counted. The max over ranks is the critical path a dedicated-core
/// `ThreadComm` deployment approaches.
///
/// Under the parallel backend the permit does not exist and this returns
/// `0.0` — use wall-clock there; concurrency makes "own time" unmeasurable
/// from inside anyway.
pub fn rank_active_seconds() -> f64 {
    let mut s = ACTIVE_S.with(|c| c.get());
    if let Some(t0) = ACTIVE_SINCE.with(|c| c.get()) {
        s += t0.elapsed().as_secs_f64(); // mid-span query
    }
    s
}

/// Where a rank is parked, for the watchdog's who-waits-on-whom dump.
#[derive(Clone, Copy, Debug)]
pub(crate) struct WaitSite {
    pub primitive: Primitive,
    pub detail: WaitDetail,
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum WaitDetail {
    /// Barrier: no further coordinates (everyone waits on everyone).
    None,
    /// Receive: which `(src, tag)` mailbox key never filled.
    SrcTag { src: usize, tag: u64 },
    /// Blackboard rendezvous: which operation id never completed.
    Op(u64),
}

impl WaitSite {
    pub fn barrier() -> WaitSite {
        WaitSite {
            primitive: Primitive::Barrier,
            detail: WaitDetail::None,
        }
    }

    pub fn recv(src: usize, tag: u64) -> WaitSite {
        WaitSite {
            primitive: Primitive::Recv,
            detail: WaitDetail::SrcTag { src, tag },
        }
    }

    pub fn exchange(op: u64) -> WaitSite {
        WaitSite {
            primitive: Primitive::Exchange,
            detail: WaitDetail::Op(op),
        }
    }
}

impl std::fmt::Display for WaitSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.detail {
            WaitDetail::None => write!(f, "{}", self.primitive),
            WaitDetail::SrcTag { src, tag } => {
                write!(f, "{}(src={src}, tag={tag:#x})", self.primitive)
            }
            WaitDetail::Op(op) => write!(f, "{}(op={op:#x})", self.primitive),
        }
    }
}

/// Sentinel for "healthy" in the poison word (no rank can have this id).
const HEALTHY: usize = usize::MAX;

enum SchedMode {
    /// All rank threads run concurrently (`ThreadComm`).
    Parallel,
    /// A single run permit serializes rank execution (`SimComm`).
    Serial(Permit),
}

/// How a universe schedules its rank threads, plus the job-wide failure
/// state they all consult. See the module docs.
pub(crate) struct Scheduler {
    mode: SchedMode,
    nranks: usize,
    /// How long one rank may stay parked in a single blocking primitive
    /// before the watchdog fails the job. `None` = watchdog off.
    watchdog: Option<Duration>,
    /// World rank of the first failed rank, or [`HEALTHY`].
    poison: AtomicUsize,
    /// Per world-rank park site (None = runnable), for diagnostics.
    waits: Mutex<Vec<Option<(WaitSite, Instant)>>>,
}

impl Scheduler {
    pub fn parallel(nranks: usize, watchdog: Option<Duration>) -> Arc<Scheduler> {
        Scheduler::build(SchedMode::Parallel, nranks, watchdog)
    }

    pub fn serial(nranks: usize, watchdog: Option<Duration>) -> Arc<Scheduler> {
        Scheduler::build(SchedMode::Serial(Permit::default()), nranks, watchdog)
    }

    fn build(mode: SchedMode, nranks: usize, watchdog: Option<Duration>) -> Arc<Scheduler> {
        Arc::new(Scheduler {
            mode,
            nranks,
            // With the `watchdog` feature off the deadline checks are
            // constant-folded away; force the config off too so behavior
            // matches what the code can express.
            watchdog: if cfg!(feature = "watchdog") {
                watchdog
            } else {
                None
            },
            poison: AtomicUsize::new(HEALTHY),
            waits: Mutex::new(vec![None; nranks]),
        })
    }

    /// Block until this thread holds the run permit (no-op when parallel).
    pub fn acquire(&self) {
        if let SchedMode::Serial(p) = &self.mode {
            let mut held = p.held.lock();
            while *held {
                p.cv.wait(&mut held);
            }
            *held = true;
            HOLDS_PERMIT.with(|c| c.set(true));
            ACTIVE_SINCE.with(|c| c.set(Some(Instant::now())));
        }
    }

    /// Hand the run permit to some other runnable rank (no-op when parallel
    /// or when this thread does not hold it — the latter makes unwinding
    /// out of a park loop safe).
    pub fn release(&self) {
        if let SchedMode::Serial(p) = &self.mode {
            if !HOLDS_PERMIT.with(|c| c.get()) {
                return;
            }
            if let Some(t0) = ACTIVE_SINCE.with(|c| c.take()) {
                ACTIVE_S.with(|c| c.set(c.get() + t0.elapsed().as_secs_f64()));
            }
            let mut held = p.held.lock();
            *held = false;
            HOLDS_PERMIT.with(|c| c.set(false));
            p.cv.notify_one();
        }
    }

    /// Acquire the permit for the duration of the returned guard; the guard
    /// releases it even on unwind, so a panicking rank cannot wedge the
    /// other ranks of a serial universe.
    pub fn runner(&self) -> RunGuard<'_> {
        self.acquire();
        RunGuard(self)
    }

    /// Record that `victim` failed. First writer wins: cascading secondary
    /// failures keep naming the original victim.
    pub fn poison(&self, victim: usize) {
        let _ = self
            .poison
            .compare_exchange(HEALTHY, victim, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// The first failed rank, if the job is poisoned.
    pub fn poison_victim(&self) -> Option<usize> {
        match self.poison.load(Ordering::SeqCst) {
            HEALTHY => None,
            victim => Some(victim),
        }
    }

    /// Fail fast at a blocking primitive's entry if the job is already
    /// poisoned: peers are unwinding, so completing (or starting to wait
    /// for) the collective is pointless.
    pub fn check_healthy(&self, primitive: Primitive) {
        if let Some(victim) = self.poison_victim() {
            raise(if world_rank() == Some(victim) {
                CommError::Poisoned
            } else {
                CommError::PeerFailed {
                    rank: victim,
                    primitive,
                }
            });
        }
    }

    /// Park the calling rank until `ready` holds for the state behind
    /// `mutex`, waking on `cv`.
    ///
    /// This is the single blocking point of the runtime. It releases the
    /// serial run permit before sleeping and — on the success path only —
    /// reacquires it with no locks held, so a permit-holding peer can never
    /// deadlock against `mutex`. `Ok(())` guarantees `ready` was observed
    /// true; the caller re-locks and consumes (safe because every awaited
    /// condition here is sticky for this rank: a queued message is popped
    /// only by its owner, a completed blackboard entry stays until all read,
    /// a barrier generation only advances).
    ///
    /// `Err` means the job failed while parked — a peer died
    /// ([`CommError::PeerFailed`]) or the watchdog deadline expired
    /// ([`CommError::Timeout`], after dumping the wait table). The permit is
    /// *not* reacquired on this path; the caller must unwind.
    pub fn park_until<T>(
        &self,
        mutex: &Mutex<T>,
        cv: &Condvar,
        site: WaitSite,
        ready: impl Fn(&T) -> bool,
    ) -> Result<(), CommError> {
        self.release();
        let me = world_rank();
        self.set_wait(me, Some((site, Instant::now())));
        let parked_at = Instant::now();
        let out = loop {
            if let Some(victim) = self.poison_victim() {
                break Err(if me == Some(victim) {
                    CommError::Poisoned
                } else {
                    CommError::PeerFailed {
                        rank: victim,
                        primitive: site.primitive,
                    }
                });
            }
            if cfg!(feature = "watchdog") {
                if let Some(deadline) = self.watchdog {
                    let waited = parked_at.elapsed();
                    if waited > deadline {
                        self.dump_waits(waited);
                        // A timed-out rank is the job's (first) victim: its
                        // peers unwind with PeerFailed naming it.
                        self.poison(me.unwrap_or(self.nranks));
                        break Err(CommError::Timeout {
                            primitive: site.primitive,
                            waited,
                        });
                    }
                }
            }
            let mut guard = mutex.lock();
            if ready(&guard) {
                break Ok(());
            }
            cv.wait_for(&mut guard, POLL);
            if ready(&guard) {
                break Ok(());
            }
        };
        self.set_wait(me, None);
        if out.is_ok() {
            self.acquire();
        }
        out
    }

    fn set_wait(&self, me: Option<usize>, site: Option<(WaitSite, Instant)>) {
        if let Some(r) = me {
            if r < self.nranks {
                self.waits.lock()[r] = site;
            }
        }
    }

    /// Who-waits-on-whom diagnostic, printed once when a watchdog expires.
    fn dump_waits(&self, waited: Duration) {
        let waits = self.waits.lock();
        eprintln!(
            "[sa_mpisim] watchdog: rank {:?} parked for {:.3}s past the deadline; wait table:",
            world_rank(),
            waited.as_secs_f64()
        );
        let mut parked = 0usize;
        for (r, w) in waits.iter().enumerate() {
            match w {
                Some((site, since)) => {
                    parked += 1;
                    eprintln!(
                        "[sa_mpisim]   rank {r}: parked in {site} for {:.3}s",
                        since.elapsed().as_secs_f64()
                    );
                }
                None => eprintln!("[sa_mpisim]   rank {r}: runnable"),
            }
        }
        if matches!(self.mode, SchedMode::Serial(_)) && parked == self.nranks {
            eprintln!(
                "[sa_mpisim]   all {} ranks parked with no runnable rank under serial \
                 scheduling: proven deadlock",
                self.nranks
            );
        }
    }
}

/// The serial backend's global run permit.
#[derive(Default)]
struct Permit {
    held: Mutex<bool>,
    cv: Condvar,
}

/// RAII holder of the run permit (see [`Scheduler::runner`]).
pub(crate) struct RunGuard<'a>(&'a Scheduler);

impl Drop for RunGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// Poisons the job if the guarded scope unwinds — armed around each rank
/// closure by [`Universe`](crate::Universe), so any rank panic (user code,
/// library assert, injected fault) wakes every parked peer. Declared
/// *after* the rank's [`RunGuard`] so it drops first: the poison is
/// recorded before the run permit goes back into circulation.
pub(crate) struct PoisonGuard<'a> {
    sched: &'a Scheduler,
    rank: usize,
}

impl<'a> PoisonGuard<'a> {
    pub fn new(sched: &'a Scheduler, rank: usize) -> PoisonGuard<'a> {
        PoisonGuard { sched, rank }
    }
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.sched.poison(self.rank);
        }
    }
}

/// A reusable sense-reversing barrier that integrates with the scheduler:
/// waiters park through [`Scheduler::park_until`], so a serial universe
/// cannot deadlock on its own barrier and a dead peer's survivors unwind
/// instead of waiting forever.
///
/// (`std::sync::Barrier` cannot be used here: its `wait` offers no hook to
/// release the permit, so under serial scheduling the first arriver would
/// sleep while still holding the only permit.)
pub(crate) struct RankBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    n: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl RankBarrier {
    pub fn new(n: usize) -> RankBarrier {
        RankBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
            n,
        }
    }

    /// Block until all `n` ranks have arrived at this barrier generation.
    /// Unwinds with a [`CommError`] if the job is poisoned or the watchdog
    /// expires while waiting.
    pub fn wait(&self, sched: &Scheduler) {
        sched.check_healthy(Primitive::Barrier);
        let gen = {
            let mut s = self.state.lock();
            s.arrived += 1;
            if s.arrived == self.n {
                // Last arriver trips the barrier and keeps the permit.
                s.arrived = 0;
                s.generation += 1;
                self.cv.notify_all();
                return;
            }
            s.generation
        };
        if let Err(e) = sched.park_until(&self.state, &self.cv, WaitSite::barrier(), |s| {
            s.generation != gen
        }) {
            raise(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::p2p::Hub;
    use std::panic::AssertUnwindSafe;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_permit_admits_one_at_a_time() {
        let sched = Scheduler::serial(8, None);
        let inside = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let sched = sched.clone();
                let inside = inside.clone();
                let peak = peak.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let _g = sched.runner();
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        inside.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "serial mode must not overlap ranks"
        );
    }

    #[test]
    fn permit_released_on_panic() {
        let sched = Scheduler::serial(2, None);
        let s2 = sched.clone();
        let t = std::thread::spawn(move || {
            let _g = s2.runner();
            panic!("rank dies holding the permit");
        });
        assert!(t.join().is_err());
        // If the guard leaked the permit this would hang forever.
        let _g = sched.runner();
    }

    #[test]
    fn release_without_permit_is_harmless() {
        // The park-loop failure path unwinds after handing the permit over;
        // the RunGuard's release on that unwind must not free a permit some
        // other rank now holds.
        let sched = Scheduler::serial(2, None);
        sched.acquire();
        sched.release();
        sched.release(); // idempotent: second release is a no-op
        let s2 = sched.clone();
        let t = std::thread::spawn(move || {
            let _g = s2.runner(); // still acquirable exactly once
        });
        t.join().unwrap();
    }

    #[test]
    fn barrier_trips_for_all_generations() {
        let sched = Scheduler::parallel(4, None);
        let bar = Arc::new(RankBarrier::new(4));
        let count = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (bar, sched, count) = (bar.clone(), sched.clone(), count.clone());
                scope.spawn(move || {
                    for round in 1..=3 {
                        count.fetch_add(1, Ordering::SeqCst);
                        bar.wait(&sched);
                        assert!(count.load(Ordering::SeqCst) >= 4 * round);
                        bar.wait(&sched);
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn active_seconds_accumulate_only_while_permit_held() {
        let sched = Scheduler::serial(1, None);
        let t = {
            let sched = sched.clone();
            std::thread::spawn(move || {
                assert_eq!(rank_active_seconds(), 0.0, "fresh thread starts at 0");
                {
                    let _g = sched.runner();
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                let held = rank_active_seconds();
                assert!(held >= 0.004, "held span must be counted: {held}");
                // blocked time (permit released) must NOT count
                std::thread::sleep(std::time::Duration::from_millis(10));
                let after = rank_active_seconds();
                assert_eq!(held, after, "time without the permit is not active");
                held
            })
        };
        t.join().unwrap();
        // parallel scheduler: no permit, no accounting
        let par = Scheduler::parallel(1, None);
        let t2 = std::thread::spawn(move || {
            let _g = par.runner();
            std::thread::sleep(std::time::Duration::from_millis(3));
            rank_active_seconds()
        });
        assert_eq!(t2.join().unwrap(), 0.0);
    }

    #[test]
    fn barrier_under_serial_scheduler_does_not_deadlock() {
        let sched = Scheduler::serial(3, None);
        let bar = Arc::new(RankBarrier::new(3));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let (bar, sched) = (bar.clone(), sched.clone());
                scope.spawn(move || {
                    let _g = sched.runner();
                    for _ in 0..20 {
                        bar.wait(&sched);
                    }
                });
            }
        });
    }

    /// Expect `f` to unwind with exactly `want` as its typed payload.
    fn expect_comm_error(f: impl FnOnce() + std::panic::UnwindSafe, want: CommError) {
        let payload = std::panic::catch_unwind(f).expect_err("must unwind");
        match payload.downcast_ref::<CommError>() {
            Some(got) => assert_eq!(*got, want),
            None => panic!("non-CommError payload"),
        }
    }

    fn both_modes(n: usize) -> [Arc<Scheduler>; 2] {
        [Scheduler::serial(n, None), Scheduler::parallel(n, None)]
    }

    #[test]
    fn poison_wakes_barrier_waiter_with_peer_failed() {
        // Rank 1 panics while holding the run permit; rank 0, parked in the
        // barrier, must wake with PeerFailed naming rank 1 — under both the
        // serial and the parallel scheduler.
        for sched in both_modes(2) {
            let bar = Arc::new(RankBarrier::new(2));
            std::thread::scope(|scope| {
                let waiter = {
                    let (bar, sched) = (bar.clone(), sched.clone());
                    scope.spawn(move || {
                        set_world_rank(0);
                        let _run = sched.runner();
                        expect_comm_error(
                            AssertUnwindSafe(|| bar.wait(&sched)),
                            CommError::PeerFailed {
                                rank: 1,
                                primitive: Primitive::Barrier,
                            },
                        );
                    })
                };
                let killer = {
                    let sched = sched.clone();
                    scope.spawn(move || {
                        set_world_rank(1);
                        let _run = sched.runner();
                        let _poison = PoisonGuard::new(&sched, 1);
                        panic!("rank 1 dies");
                    })
                };
                assert!(killer.join().is_err());
                waiter.join().unwrap();
            });
        }
    }

    #[test]
    fn poison_wakes_recv_waiter_with_peer_failed() {
        // Same as above but for a rank parked in Hub::recv on a message
        // that will never arrive.
        for sched in both_modes(2) {
            let hub = Arc::new(Hub::new(2));
            std::thread::scope(|scope| {
                let waiter = {
                    let (hub, sched) = (hub.clone(), sched.clone());
                    scope.spawn(move || {
                        set_world_rank(0);
                        let _run = sched.runner();
                        expect_comm_error(
                            AssertUnwindSafe(|| {
                                let _ = hub.recv(0, 1, 7, &sched);
                            }),
                            CommError::PeerFailed {
                                rank: 1,
                                primitive: Primitive::Recv,
                            },
                        );
                    })
                };
                let killer = {
                    let sched = sched.clone();
                    scope.spawn(move || {
                        set_world_rank(1);
                        let _run = sched.runner();
                        let _poison = PoisonGuard::new(&sched, 1);
                        panic!("rank 1 dies before sending");
                    })
                };
                assert!(killer.join().is_err());
                waiter.join().unwrap();
            });
        }
    }

    #[test]
    fn poisoned_job_fails_fast_at_primitive_entry() {
        let sched = Scheduler::serial(2, None);
        sched.poison(1);
        let bar = RankBarrier::new(2);
        std::thread::scope(|scope| {
            let sched = &sched;
            let bar = &bar;
            scope
                .spawn(move || {
                    set_world_rank(0);
                    expect_comm_error(
                        AssertUnwindSafe(|| bar.wait(sched)),
                        CommError::PeerFailed {
                            rank: 1,
                            primitive: Primitive::Barrier,
                        },
                    );
                })
                .join()
                .unwrap();
            // ... and the victim itself sees Poisoned, not PeerFailed.
            scope
                .spawn(move || {
                    set_world_rank(1);
                    expect_comm_error(AssertUnwindSafe(|| bar.wait(sched)), CommError::Poisoned);
                })
                .join()
                .unwrap();
        });
    }

    #[test]
    fn poison_is_first_writer_wins() {
        let sched = Scheduler::parallel(4, None);
        sched.poison(2);
        sched.poison(3);
        assert_eq!(sched.poison_victim(), Some(2));
    }

    #[cfg(feature = "watchdog")]
    #[test]
    fn watchdog_times_out_a_stuck_wait() {
        // One rank parks on a barrier nobody else ever reaches: the
        // watchdog must convert the hang into a typed Timeout.
        let sched = Scheduler::parallel(2, Some(Duration::from_millis(100)));
        let bar = RankBarrier::new(2);
        std::thread::scope(|scope| {
            let sched = &sched;
            let bar = &bar;
            scope
                .spawn(move || {
                    set_world_rank(0);
                    let payload = std::panic::catch_unwind(AssertUnwindSafe(|| bar.wait(sched)))
                        .expect_err("must time out");
                    match payload.downcast_ref::<CommError>() {
                        Some(CommError::Timeout { primitive, waited }) => {
                            assert_eq!(*primitive, Primitive::Barrier);
                            assert!(*waited >= Duration::from_millis(100));
                        }
                        other => panic!("expected Timeout, got {other:?}"),
                    }
                })
                .join()
                .unwrap();
        });
        // the timed-out rank poisoned the job for its peers
        assert_eq!(sched.poison_victim(), Some(0));
    }
}
