//! Rank-execution scheduling: the one thing the two in-process backends do
//! differently.
//!
//! Both [`SimComm`](crate::SimComm) and [`ThreadComm`](crate::ThreadComm)
//! run every rank on its own OS thread — what differs is whether those
//! threads may *run concurrently*:
//!
//! * [`Scheduler::Parallel`] (the `ThreadComm` backend) never gates
//!   execution: all rank threads run whenever the OS lets them, so
//!   wall-clock reflects real parallel execution.
//! * [`Scheduler::Serial`] (the `SimComm` backend) holds a single global
//!   **run permit**: exactly one rank executes at any instant, and a rank
//!   hands the permit over only while it is blocked in a communication
//!   call (receive, barrier, collective rendezvous). This is the classic
//!   serial rank-loop simulator — wall-clock is the *sum* of per-rank work
//!   (fiction as a time-to-solution, but per-rank timings are measured
//!   interference-free), while bytes and message counts are exact and
//!   byte-identical to the parallel backend.
//!
//! The permit is cooperative, not preemptive: ranks only yield at blocking
//! communication points. That is safe here because the runtime has no
//! busy-wait loops — one-sided [`Window`](crate::Window) gets never block
//! (they read `Arc`-shared buffers directly), and every blocking primitive
//! in this crate ([`Hub::recv`](crate::p2p::Hub), blackboard exchange,
//! barrier) releases the permit before sleeping and reacquires it on wake.

use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// Seconds this thread has held the serial run permit (accumulated at
    /// each release), plus the start of the current holding span.
    static ACTIVE_S: Cell<f64> = const { Cell::new(0.0) };
    static ACTIVE_SINCE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Seconds this rank thread has spent *runnable* — holding the serial
/// backend's run permit — since it started. Under `SimComm` exactly one
/// rank runs at a time, so this is the rank's own work (compute, copies,
/// its side of communication calls), measured with zero interference:
/// time blocked in receives, barriers or collective rendezvous is *not*
/// counted. The max over ranks is the critical path a dedicated-core
/// `ThreadComm` deployment approaches.
///
/// Under the parallel backend the permit does not exist and this returns
/// `0.0` — use wall-clock there; concurrency makes "own time" unmeasurable
/// from inside anyway.
pub fn rank_active_seconds() -> f64 {
    let mut s = ACTIVE_S.with(|c| c.get());
    if let Some(t0) = ACTIVE_SINCE.with(|c| c.get()) {
        s += t0.elapsed().as_secs_f64(); // mid-span query
    }
    s
}

/// How a universe schedules its rank threads. See the module docs.
pub(crate) enum Scheduler {
    /// All rank threads run concurrently (`ThreadComm`).
    Parallel,
    /// A single run permit serializes rank execution (`SimComm`).
    Serial(Permit),
}

impl Scheduler {
    pub fn parallel() -> Arc<Scheduler> {
        Arc::new(Scheduler::Parallel)
    }

    pub fn serial() -> Arc<Scheduler> {
        Arc::new(Scheduler::Serial(Permit::default()))
    }

    /// Block until this thread holds the run permit (no-op when parallel).
    pub fn acquire(&self) {
        if let Scheduler::Serial(p) = self {
            let mut held = p.held.lock();
            while *held {
                p.cv.wait(&mut held);
            }
            *held = true;
            ACTIVE_SINCE.with(|c| c.set(Some(Instant::now())));
        }
    }

    /// Hand the run permit to some other runnable rank (no-op when
    /// parallel). Must only be called by the current holder.
    pub fn release(&self) {
        if let Scheduler::Serial(p) = self {
            if let Some(t0) = ACTIVE_SINCE.with(|c| c.take()) {
                ACTIVE_S.with(|c| c.set(c.get() + t0.elapsed().as_secs_f64()));
            }
            let mut held = p.held.lock();
            debug_assert!(*held, "releasing a permit this thread does not hold");
            *held = false;
            p.cv.notify_one();
        }
    }

    /// Acquire the permit for the duration of the returned guard; the guard
    /// releases it even on unwind, so a panicking rank cannot wedge the
    /// other ranks of a serial universe.
    pub fn runner(&self) -> RunGuard<'_> {
        self.acquire();
        RunGuard(self)
    }
}

/// The serial backend's global run permit.
#[derive(Default)]
pub(crate) struct Permit {
    held: Mutex<bool>,
    cv: Condvar,
}

/// RAII holder of the run permit (see [`Scheduler::runner`]).
pub(crate) struct RunGuard<'a>(&'a Scheduler);

impl Drop for RunGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// A reusable sense-reversing barrier that integrates with the scheduler:
/// waiters hand the run permit over before sleeping, so a serial universe
/// cannot deadlock on its own barrier.
///
/// (`std::sync::Barrier` cannot be used here: its `wait` offers no hook to
/// release the permit, so under serial scheduling the first arriver would
/// sleep while still holding the only permit.)
pub(crate) struct RankBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    n: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl RankBarrier {
    pub fn new(n: usize) -> RankBarrier {
        RankBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
            n,
        }
    }

    /// Block until all `n` ranks have arrived at this barrier generation.
    pub fn wait(&self, sched: &Scheduler) {
        let gen = {
            let mut s = self.state.lock();
            s.arrived += 1;
            if s.arrived == self.n {
                // Last arriver trips the barrier and keeps the permit.
                s.arrived = 0;
                s.generation += 1;
                self.cv.notify_all();
                return;
            }
            s.generation
        };
        sched.release();
        {
            let mut s = self.state.lock();
            while s.generation == gen {
                self.cv.wait(&mut s);
            }
        }
        sched.acquire();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_permit_admits_one_at_a_time() {
        let sched = Scheduler::serial();
        let inside = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let sched = sched.clone();
                let inside = inside.clone();
                let peak = peak.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let _g = sched.runner();
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        inside.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "serial mode must not overlap ranks"
        );
    }

    #[test]
    fn permit_released_on_panic() {
        let sched = Scheduler::serial();
        let s2 = sched.clone();
        let t = std::thread::spawn(move || {
            let _g = s2.runner();
            panic!("rank dies holding the permit");
        });
        assert!(t.join().is_err());
        // If the guard leaked the permit this would hang forever.
        let _g = sched.runner();
    }

    #[test]
    fn barrier_trips_for_all_generations() {
        let sched = Scheduler::parallel();
        let bar = Arc::new(RankBarrier::new(4));
        let count = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (bar, sched, count) = (bar.clone(), sched.clone(), count.clone());
                scope.spawn(move || {
                    for round in 1..=3 {
                        count.fetch_add(1, Ordering::SeqCst);
                        bar.wait(&sched);
                        assert!(count.load(Ordering::SeqCst) >= 4 * round);
                        bar.wait(&sched);
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn active_seconds_accumulate_only_while_permit_held() {
        let sched = Scheduler::serial();
        let t = {
            let sched = sched.clone();
            std::thread::spawn(move || {
                assert_eq!(rank_active_seconds(), 0.0, "fresh thread starts at 0");
                {
                    let _g = sched.runner();
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                let held = rank_active_seconds();
                assert!(held >= 0.004, "held span must be counted: {held}");
                // blocked time (permit released) must NOT count
                std::thread::sleep(std::time::Duration::from_millis(10));
                let after = rank_active_seconds();
                assert_eq!(held, after, "time without the permit is not active");
                held
            })
        };
        t.join().unwrap();
        // parallel scheduler: no permit, no accounting
        let par = Scheduler::parallel();
        let t2 = std::thread::spawn(move || {
            let _g = par.runner();
            std::thread::sleep(std::time::Duration::from_millis(3));
            rank_active_seconds()
        });
        assert_eq!(t2.join().unwrap(), 0.0);
    }

    #[test]
    fn barrier_under_serial_scheduler_does_not_deadlock() {
        let sched = Scheduler::serial();
        let bar = Arc::new(RankBarrier::new(3));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let (bar, sched) = (bar.clone(), sched.clone());
                scope.spawn(move || {
                    let _g = sched.runner();
                    for _ in 0..20 {
                        bar.wait(&sched);
                    }
                });
            }
        });
    }
}
