//! Process-per-rank backend: one OS process per rank over localhost TCP.
//!
//! The in-process backends ([`SimComm`](crate::SimComm),
//! [`ThreadComm`](crate::ThreadComm)) share one address space, which makes
//! wall-clock numbers thread-shared and window gets zero-copy. `ProcComm`
//! is the backend that makes multi-core measurements honest: every rank is
//! a forked OS process with its own heap, and all communication crosses a
//! real socket using the [`wire`](crate::wire) framing.
//!
//! # Architecture
//!
//! * **Bootstrap.** The parent binds a rendezvous listener, forks `n`
//!   children, then accepts one connection per child. Each child binds its
//!   own mesh listener, connects to the parent, and sends
//!   [`Frame::Hello`] with its rank and mesh port; the parent answers with
//!   [`Frame::Table`] (every rank's port). Children then build a full
//!   peer-to-peer mesh: rank `r` dials every `s < r` (announcing itself
//!   with [`Frame::Peer`]) and accepts from every `s > r`.
//! * **Progress engine.** Per peer, each child runs a *reader* thread
//!   (drains the socket: data into the inbox, get-responses into the
//!   response map, get-requests onto a service queue, failure frames into
//!   the scheduler poison) and a *responder* thread (services queued
//!   [`Frame::GetReq`]s against the window registry and writes
//!   [`Frame::GetResp`]). Readers never write and responders never read,
//!   so every socket always has an active drain — the classic two-sided
//!   TCP flow-control deadlock cannot form.
//! * **Blocking.** The rank's main thread blocks only through
//!   [`Scheduler::park_until`], the same single parking point as the
//!   in-process backends — so poison wake-ups ([`CommError::PeerFailed`])
//!   and the stall watchdog ([`CommError::Timeout`] plus the wait-table
//!   dump) work identically. A dead socket poisons the job: the reader
//!   that sees an unexpected EOF names that peer as the victim.
//! * **Windows.** [`Comm::expose`] registers the deposit with the local
//!   progress engine and allgathers `(window id, lengths)`; gets travel as
//!   `GetReq`/`GetResp` byte ranges served by the *target's responder
//!   thread* — the rank's own main thread is never involved, preserving
//!   the passive-target contract. After its closure finishes, a rank keeps
//!   serving gets until every peer has sent [`Frame::Bye`] (the shutdown
//!   rendezvous), so no get can race a peer's exit.
//! * **Outcomes.** Each child reports a serialized
//!   [`RankOutcome`](crate::RankOutcome) to the parent over its bootstrap
//!   socket and `_exit`s. A child that dies without reporting (e.g.
//!   `kill -9`) is classified from its `waitpid` status.
//!
//! Accounting is byte-identical to `SimComm` by construction: `send_vec` /
//! `recv_vec` meter `len * size_of::<T>()` exactly like
//! [`RankComm`](crate::RankComm) (self-sends free, control-plane frames
//! unmetered, window gets charged to the issuer only), and all nine
//! collectives are provided [`Comm`] methods over that metered core. The
//! backend-conformance suite asserts the identity per rank.

use crate::backend::Comm;
use crate::error::{raise, CommError, Primitive, RankError, RankOutcome};
use crate::fault::FaultPlan;
use crate::fault::FrameFault;
use crate::recover::RetryPolicy;
use crate::scheduler::{self, PoisonGuard, Scheduler, WaitSite};
use crate::stats::{CommStats, StatsCell};
use crate::window::{Exposure, PartSpec, RemoteWindow, WindowSpec};
use crate::wire::{vec_codec, Frame, Wire, WireError, MAX_FRAME};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Minimal libc surface for process management — declared directly so the
/// offline build needs no `libc` crate.
pub(crate) mod sys {
    extern "C" {
        pub fn fork() -> i32;
        pub fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
        pub fn kill(pid: i32, sig: i32) -> i32;
        pub fn getpid() -> i32;
        pub fn _exit(code: i32) -> !;
    }

    /// `WIFEXITED`/`WEXITSTATUS`: normal exit code, if any.
    pub fn exit_code(status: i32) -> Option<i32> {
        ((status & 0x7f) == 0).then_some((status >> 8) & 0xff)
    }

    /// `WIFSIGNALED`/`WTERMSIG`: fatal signal number, if any.
    pub fn term_signal(status: i32) -> Option<i32> {
        let sig = status & 0x7f;
        (sig != 0 && sig != 0x7f).then_some(sig)
    }
}

/// Set in every forked rank process before anything else runs; lets
/// backend-agnostic code (e.g. [`FaultAction::Kill`](crate::FaultAction))
/// ask "am I a ProcComm child, where SIGKILLing myself kills one rank and
/// not the whole test binary?"
static IN_FORKED_CHILD: AtomicBool = AtomicBool::new(false);

pub(crate) fn in_forked_child() -> bool {
    IN_FORKED_CHILD.load(Ordering::Relaxed)
}

/// Kill the calling process with SIGKILL — no unwinding, no atexit, no
/// chance to say goodbye. The real "power cord pulled" failure mode for
/// the fault matrix; survivors must detect it from the dead socket alone.
pub fn kill_self_with_sigkill() -> ! {
    unsafe {
        sys::kill(sys::getpid(), 9);
    }
    // SIGKILL is not deliverable to a stopped clock, but is to us; if the
    // kernel somehow let us get here, exit hard anyway.
    unsafe { sys::_exit(137) }
}

// ---------------------------------------------------------------------------
// Socket framing helpers
// ---------------------------------------------------------------------------

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    let body = frame.to_bytes();
    debug_assert!(body.len() <= MAX_FRAME);
    let mut msg = Vec::with_capacity(4 + body.len());
    (body.len() as u32).put(&mut msg);
    msg.extend_from_slice(&body);
    stream.write_all(&msg)
}

/// Whether a dial/accept error is worth retrying during mesh bootstrap: a
/// freshly forked sibling may not have bound its listener yet (refused /
/// reset), and a signal can interrupt the syscall (`EINTR`). Anything else
/// is a real failure.
fn transient_bootstrap_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::AddrNotAvailable
            | std::io::ErrorKind::Interrupted
    )
}

/// Dial `addr`, retrying transient refusals under `policy`'s bounded
/// exponential backoff. Returns the stream and how many retries it took —
/// surfaced in the bootstrap log line so a flaky mesh formation is visible.
fn connect_with_retry<A: std::net::ToSocketAddrs>(
    addr: A,
    policy: &RetryPolicy,
) -> std::io::Result<(TcpStream, u32)> {
    let mut retries = 0u32;
    loop {
        match TcpStream::connect(&addr) {
            Ok(s) => return Ok((s, retries)),
            Err(e) if transient_bootstrap_error(&e) && retries < policy.max_restarts => {
                std::thread::sleep(policy.backoff_for(retries));
                retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// `accept` tolerating `EINTR` (bounded by `policy` against a signal
/// storm). No backoff: an interrupted accept just re-enters the syscall.
fn accept_with_retry(
    listener: &TcpListener,
    policy: &RetryPolicy,
) -> std::io::Result<(TcpStream, u32)> {
    let mut retries = 0u32;
    loop {
        match listener.accept() {
            Ok((s, _)) => return Ok((s, retries)),
            Err(e)
                if e.kind() == std::io::ErrorKind::Interrupted && retries < policy.max_restarts =>
            {
                retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Why reading one frame off a link failed — the distinction the mesh
/// reader threads act on.
enum RecvFailure {
    /// The socket itself failed (EOF, reset, short read): the
    /// length-delimited framing is gone and the link is dead.
    Io(std::io::Error),
    /// The frame arrived intact as a byte string but its CRC (or its
    /// structure) rejected it. We read exactly the advertised length, so
    /// the framing is still aligned and the link can keep going — which is
    /// what lets a lossy-plan run treat detected corruption as loss.
    Corrupt(WireError),
}

/// Read one `[u32 LE length][kind][body][crc]` frame, classifying the
/// failure mode (see [`RecvFailure`]).
fn read_frame_raw(stream: &mut impl Read) -> Result<Frame, RecvFailure> {
    let mut len4 = [0u8; 4];
    stream.read_exact(&mut len4).map_err(RecvFailure::Io)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len > MAX_FRAME {
        return Err(RecvFailure::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        )));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).map_err(RecvFailure::Io)?;
    Frame::from_bytes(&body).map_err(RecvFailure::Corrupt)
}

/// [`read_frame_raw`] flattened to `io::Result` for the bootstrap and
/// parent paths, where corruption and a dead socket end the same way.
fn read_frame(stream: &mut impl Read) -> std::io::Result<Frame> {
    read_frame_raw(stream).map_err(|e| match e {
        RecvFailure::Io(e) => e,
        RecvFailure::Corrupt(w) => {
            std::io::Error::new(std::io::ErrorKind::InvalidData, w.to_string())
        }
    })
}

// ---------------------------------------------------------------------------
// Per-process shared state (one ProcNode per child process)
// ---------------------------------------------------------------------------

/// Inbox key: (communicator id, sender's rank *in that communicator*, tag).
type MsgKey = (u64, u64, u64);

/// A queued two-sided message: self-sends stay as their live `Vec<T>` (no
/// serialization inside one process), peer messages arrive as wire bytes.
enum InPayload {
    Local(Box<dyn Any + Send>),
    Remote {
        type_fp: u64,
        count: u64,
        bytes: Vec<u8>,
        /// What the receiver must meter, or `None` for control frames.
        meter_bytes: Option<u64>,
    },
}

struct Inbox {
    map: Mutex<HashMap<MsgKey, VecDeque<InPayload>>>,
    cv: Condvar,
}

struct GetRespMap {
    map: Mutex<HashMap<u64, Vec<u8>>>,
    cv: Condvar,
}

struct RegisteredWindow {
    arc: Arc<dyn Any + Send + Sync>,
    parts: Vec<PartSpec>,
    extract: fn(&(dyn Any + Send + Sync), usize, Range<usize>, &mut Vec<u8>),
}

/// One queued get-request from a specific peer.
struct GetWork {
    req_id: u64,
    win_id: u64,
    part: u32,
    start: u64,
    end: u64,
}

/// Work for a peer's responder thread. Readers never write to a socket
/// (the deadlock-freedom invariant), so acknowledgements of reliable
/// frames are queued here and written by the responder alongside
/// `GetResp`s.
enum RespWork {
    Get(GetWork),
    Ack { seq: u64 },
}

struct GetQueue {
    q: Mutex<VecDeque<RespWork>>,
    cv: Condvar,
}

/// How long a reliable frame waits for its ack before the first
/// retransmission. Deliberately generous for localhost so an un-dropped
/// frame is essentially never retransmitted spuriously — which keeps the
/// retransmit log of a seeded drop plan replayable.
const RETRANSMIT_AFTER: Duration = Duration::from_millis(50);

/// One sent-but-unacknowledged reliable frame (the clean, uninjured
/// encoding — retransmissions bypass the fault shim so a lossy run always
/// converges).
struct Unacked {
    bytes: Vec<u8>,
    due: Instant,
    tries: u32,
}

/// Send half of one mesh link's reliability state.
#[derive(Default)]
struct SendLink {
    next_seq: u64,
    unacked: BTreeMap<u64, Unacked>,
}

/// Receive half: in-order delivery with dedup. Retransmissions can reorder
/// frames on a link; MPI guarantees same-(src, tag, comm) message order,
/// so released frames are held until their sequence gap closes.
#[derive(Default)]
struct RecvLink {
    next_expected: u64,
    held: BTreeMap<u64, Frame>,
}

/// What a reader does after dispatching one frame.
enum Flow {
    Continue,
    Stop,
}

/// Process-local heartbeat mute for tests: models a peer that is wedged —
/// alive enough to keep its TCP links open, too stuck to prove liveness.
/// Affects only the calling process, i.e. exactly one rank under the
/// procs backend.
static HEARTBEATS_MUTED: AtomicBool = AtomicBool::new(false);

/// Stop this process's heartbeat beacons (test hook; see
/// `HEARTBEATS_MUTED` above). Under the procs backend each rank is its
/// own process, so muting inside a rank closure wedges that rank only.
pub fn mute_heartbeats() {
    HEARTBEATS_MUTED.store(true, Ordering::Relaxed);
}

/// Everything one rank *process* shares between its main thread and its
/// per-peer reader/responder threads.
struct ProcNode {
    world_rank: usize,
    world_size: usize,
    sched: Arc<Scheduler>,
    /// Write halves of the mesh links, indexed by world rank (`None` at
    /// our own slot). Locked per write; one frame per `write_all`.
    links: Vec<Option<Mutex<TcpStream>>>,
    inbox: Inbox,
    getresp: GetRespMap,
    windows: Mutex<HashMap<u64, RegisteredWindow>>,
    next_win: AtomicU64,
    next_req: AtomicU64,
    /// Which peers have finished (Bye, Abort, or EOF) — the shutdown
    /// rendezvous waits for all of them so our windows outlive their gets.
    peers_done: Mutex<Vec<bool>>,
    peers_done_cv: Condvar,
    /// The armed lossy-transport plan, if any. `None` on clean runs: the
    /// whole reliability layer (sequence numbers, acks, the sweeper) is
    /// bypassed and droppable frames travel bare, so clean runs pay only
    /// the frame CRC.
    lossy: Option<Arc<FaultPlan>>,
    /// This rank's droppable-frame counter — the coordinate
    /// [`FaultPlan::frame_lookup`] is keyed on.
    frames_sent: AtomicU64,
    /// Per-peer send/recv reliability state, indexed by world rank (the
    /// own-rank slots are never touched).
    send_links: Vec<Mutex<SendLink>>,
    recv_links: Vec<Mutex<RecvLink>>,
    /// `(peer world rank, seq)` of every retransmission, in order — the
    /// observable surface of the seeded-replay tests.
    retransmits: Mutex<Vec<(u64, u64)>>,
    /// Per-peer last-seen clocks, refreshed on every received frame; the
    /// heartbeat monitor converts a stale clock into a typed peer failure.
    last_seen: Vec<Mutex<Instant>>,
}

impl ProcNode {
    fn send_frame(&self, world: usize, frame: &Frame) -> std::io::Result<()> {
        let link = self.links[world]
            .as_ref()
            .expect("no link to self — caller handles self-sends locally");
        write_frame(&mut link.lock(), frame)
    }

    /// Best-effort frame to every peer (shutdown/failure notifications).
    fn send_frame_all(&self, frame: &Frame) {
        for world in 0..self.world_size {
            if world != self.world_rank {
                let _ = self.send_frame(world, frame);
            }
        }
    }

    fn mark_peer_done(&self, world: usize) {
        let mut done = self.peers_done.lock();
        done[world] = true;
        self.peers_done_cv.notify_all();
    }

    /// Write pre-encoded frame bytes (with the length prefix) to `world`'s
    /// link — the raw path the fault shim and the sweeper use, so injured
    /// bytes and retransmissions skip re-encoding.
    fn write_raw(&self, world: usize, bytes: &[u8]) -> std::io::Result<()> {
        let link = self.links[world]
            .as_ref()
            .expect("no link to self — caller handles self-sends locally");
        let mut msg = Vec::with_capacity(4 + bytes.len());
        (bytes.len() as u32).put(&mut msg);
        msg.extend_from_slice(bytes);
        link.lock().write_all(&msg)
    }

    /// Send a droppable frame (`Data`/`GetReq`/`GetResp`) to `world`. With
    /// no lossy plan armed this is a plain [`ProcNode::send_frame`]. Under
    /// an armed plan the frame is wrapped in [`Frame::Reliable`] with a
    /// per-link sequence number, recorded for retransmission until acked,
    /// and the plan gets one chance to drop / corrupt / delay / duplicate
    /// the wire bytes.
    fn send_droppable(&self, world: usize, frame: &Frame) -> std::io::Result<()> {
        let Some(plan) = &self.lossy else {
            return self.send_frame(world, frame);
        };
        let idx = self.frames_sent.fetch_add(1, Ordering::SeqCst);
        let bytes = {
            let mut link = self.send_links[world].lock();
            let seq = link.next_seq;
            link.next_seq += 1;
            let bytes = Frame::Reliable {
                seq,
                inner: frame.to_bytes(),
            }
            .to_bytes();
            link.unacked.insert(
                seq,
                Unacked {
                    bytes: bytes.clone(),
                    due: Instant::now() + RETRANSMIT_AFTER,
                    tries: 0,
                },
            );
            bytes
        };
        match plan.frame_lookup(self.world_rank, idx) {
            Some(FrameFault::Drop) => {
                eprintln!(
                    "[sa_mpisim] rank {}: fault plan dropped frame {idx} to peer {world}",
                    self.world_rank
                );
                Ok(()) // never written; the sweeper retransmits it
            }
            Some(FrameFault::Corrupt) => {
                let mut bad = bytes;
                let pos = (idx as usize) % bad.len();
                bad[pos] ^= 0x40; // one flipped bit: CRC-detectable, framing intact
                self.write_raw(world, &bad)
            }
            Some(FrameFault::Delay(d)) => {
                std::thread::sleep(d);
                self.write_raw(world, &bytes)
            }
            Some(FrameFault::Duplicate) => {
                self.write_raw(world, &bytes)?;
                self.write_raw(world, &bytes)
            }
            None => self.write_raw(world, &bytes),
        }
    }

    /// Peer `world` acknowledged reliable frame `seq`: stop retransmitting.
    fn ack(&self, world: usize, seq: u64) {
        self.send_links[world].lock().unacked.remove(&seq);
    }

    /// Admit reliable frame `seq` from `world`: dedup by sequence number
    /// and release frames in order. Returns the (possibly empty) run of
    /// frames whose sequence gap just closed, oldest first.
    fn admit(&self, world: usize, seq: u64, frame: Frame) -> Vec<Frame> {
        let mut link = self.recv_links[world].lock();
        if seq < link.next_expected || link.held.contains_key(&seq) {
            return Vec::new(); // duplicate: already delivered or queued
        }
        link.held.insert(seq, frame);
        let mut out = Vec::new();
        loop {
            let next = link.next_expected;
            let Some(f) = link.held.remove(&next) else {
                break;
            };
            out.push(f);
            link.next_expected += 1;
        }
        out
    }

    /// Refresh `world`'s last-seen clock (called on every received frame).
    fn note_alive(&self, world: usize) {
        *self.last_seen[world].lock() = Instant::now();
    }

    /// Reader thread body for the link to `peer`: drain frames forever.
    /// Never writes to any socket (deadlock-freedom invariant) — reliable
    /// frames are acknowledged via the responder's queue.
    fn reader_loop(self: &Arc<Self>, peer: usize, stream: TcpStream, getq: Arc<GetQueue>) {
        let mut stream = std::io::BufReader::new(stream);
        let mut clean = false;
        loop {
            match read_frame_raw(&mut stream) {
                Ok(frame) => {
                    self.note_alive(peer);
                    if let Flow::Stop = self.dispatch(peer, frame, &getq, &mut clean) {
                        return;
                    }
                }
                Err(RecvFailure::Corrupt(e)) => {
                    // Detected, typed, never a silent wrong answer. Under an
                    // armed lossy plan the injured frame is equivalent to a
                    // lost one — it is never acked, so the sender
                    // retransmits the clean bytes and the run completes
                    // bit-identical. Without a plan armed, corruption on a
                    // real link is a failed peer.
                    if self.lossy.is_some() {
                        eprintln!(
                            "[sa_mpisim] rank {}: dropping corrupt frame from peer {peer}: {e}",
                            self.world_rank
                        );
                        continue;
                    }
                    eprintln!(
                        "[sa_mpisim] rank {}: corrupt frame from peer {peer}: {e}",
                        self.world_rank
                    );
                    self.sched.poison(peer);
                    self.mark_peer_done(peer);
                    return;
                }
                Err(RecvFailure::Io(_)) => {
                    // EOF or a dead socket. After a Bye this is the peer's
                    // normal exit; before one it is a crash (e.g. kill -9)
                    // — the dead socket is the failure signal, poison the
                    // job.
                    if !clean {
                        self.sched.poison(peer);
                    }
                    self.mark_peer_done(peer);
                    return;
                }
            }
        }
    }

    /// Act on one frame from `peer` (possibly released from the reliable
    /// in-order buffer). Shared by the direct and reliable delivery paths.
    fn dispatch(
        self: &Arc<Self>,
        peer: usize,
        frame: Frame,
        getq: &Arc<GetQueue>,
        clean: &mut bool,
    ) -> Flow {
        match frame {
            Frame::Data {
                comm_id,
                src,
                tag,
                metered,
                meter_bytes,
                type_fp,
                count,
                payload,
            } => {
                let mut map = self.inbox.map.lock();
                map.entry((comm_id, src, tag))
                    .or_default()
                    .push_back(InPayload::Remote {
                        type_fp,
                        count,
                        bytes: payload,
                        meter_bytes: metered.then_some(meter_bytes),
                    });
                drop(map);
                self.inbox.cv.notify_all();
                Flow::Continue
            }
            Frame::GetReq {
                req_id,
                win_id,
                part,
                start,
                end,
            } => {
                let mut q = getq.q.lock();
                q.push_back(RespWork::Get(GetWork {
                    req_id,
                    win_id,
                    part,
                    start,
                    end,
                }));
                drop(q);
                getq.cv.notify_all();
                Flow::Continue
            }
            Frame::GetResp { req_id, payload } => {
                self.getresp.map.lock().insert(req_id, payload);
                self.getresp.cv.notify_all();
                Flow::Continue
            }
            Frame::Abort { victim } => {
                self.sched.poison(victim as usize);
                self.mark_peer_done(peer);
                Flow::Continue
            }
            Frame::Bye => {
                *clean = true;
                self.mark_peer_done(peer);
                Flow::Continue
            }
            Frame::Heartbeat => Flow::Continue, // note_alive already ran
            Frame::Ack { seq } => {
                self.ack(peer, seq);
                Flow::Continue
            }
            Frame::Reliable { seq, inner } => {
                let inner = match Frame::from_bytes(&inner) {
                    Ok(f) => f,
                    Err(e) => {
                        // The outer CRC passed but the inner frame is bad:
                        // sender-side corruption, not line noise. Typed
                        // failure, not a retransmit case.
                        eprintln!(
                            "[sa_mpisim] rank {}: undecodable reliable frame from \
                             peer {peer}: {e}",
                            self.world_rank
                        );
                        self.sched.poison(peer);
                        self.mark_peer_done(peer);
                        return Flow::Stop;
                    }
                };
                // Ack every arrival (duplicates included — their ack may
                // have been the casualty), through the responder so readers
                // never write.
                let mut q = getq.q.lock();
                q.push_back(RespWork::Ack { seq });
                drop(q);
                getq.cv.notify_all();
                for released in self.admit(peer, seq, inner) {
                    if let Flow::Stop = self.dispatch(peer, released, getq, clean) {
                        return Flow::Stop;
                    }
                }
                Flow::Continue
            }
            Frame::Hello { .. }
            | Frame::Table { .. }
            | Frame::Peer { .. }
            | Frame::Outcome { .. } => {
                // Bootstrap frame after bootstrap: protocol corruption.
                self.sched.poison(peer);
                self.mark_peer_done(peer);
                Flow::Stop
            }
        }
    }

    /// Responder thread body: service `peer`'s get-requests against the
    /// window registry, and write the acks the reader queued. Writes only
    /// to `peer`.
    fn responder_loop(self: &Arc<Self>, peer: usize, getq: Arc<GetQueue>) {
        loop {
            let work = {
                let mut q = getq.q.lock();
                loop {
                    if let Some(w) = q.pop_front() {
                        break w;
                    }
                    getq.cv.wait(&mut q);
                }
            };
            let work = match work {
                RespWork::Get(w) => w,
                RespWork::Ack { seq } => {
                    // Acks travel bare (never wrapped, never injected
                    // against): the reliability layer must not depend on
                    // itself. A failed write means the peer died; its EOF
                    // machinery handles it.
                    let _ = self.send_frame(peer, &Frame::Ack { seq });
                    continue;
                }
            };
            let mut bytes = Vec::new();
            let served = {
                let windows = self.windows.lock();
                match windows.get(&work.win_id) {
                    Some(win) => {
                        let part = work.part as usize;
                        let (start, end) = (work.start as usize, work.end as usize);
                        if part < win.parts.len() && start <= end && end <= win.parts[part].len {
                            (win.extract)(win.arc.as_ref(), part, start..end, &mut bytes);
                            true
                        } else {
                            false
                        }
                    }
                    None => false,
                }
            };
            if !served {
                // A request for a window we never exposed (or out of
                // bounds): protocol corruption — fail the job rather than
                // leave the requester parked until its watchdog.
                self.sched.poison(self.world_rank);
                continue;
            }
            let frame = Frame::GetResp {
                req_id: work.req_id,
                payload: bytes,
            };
            // A failed write means the requester died; its own machinery
            // (EOF reader → poison) handles it.
            let _ = self.send_droppable(peer, &frame);
        }
    }

    /// Sweeper thread body (spawned only when a lossy plan is armed):
    /// retransmit overdue unacked frames under [`RetryPolicy::transport`]'s
    /// bounded backoff; a peer that exhausts the budget is a failed peer.
    /// Retransmissions bypass the fault shim, so a seeded lossy run always
    /// converges to the fault-free result.
    fn sweeper_loop(self: &Arc<Self>) {
        let policy = RetryPolicy::transport();
        loop {
            std::thread::sleep(Duration::from_millis(5));
            let now = Instant::now();
            for world in 0..self.world_size {
                if world == self.world_rank {
                    continue;
                }
                let mut resend: Vec<(u64, Vec<u8>)> = Vec::new();
                let mut exhausted = false;
                {
                    let mut link = self.send_links[world].lock();
                    for (seq, u) in link.unacked.iter_mut() {
                        if u.due > now {
                            continue;
                        }
                        if u.tries >= policy.max_restarts {
                            exhausted = true;
                            break;
                        }
                        u.tries += 1;
                        u.due = now + policy.backoff_for(u.tries);
                        resend.push((*seq, u.bytes.clone()));
                    }
                }
                if exhausted {
                    eprintln!(
                        "[sa_mpisim] rank {}: peer {world} never acked after \
                         {} retransmits — giving it up",
                        self.world_rank, policy.max_restarts
                    );
                    self.sched.poison(world);
                    self.mark_peer_done(world);
                    continue;
                }
                for (seq, bytes) in resend {
                    self.retransmits.lock().push((world as u64, seq));
                    let _ = self.write_raw(world, &bytes);
                }
            }
        }
    }

    /// Heartbeat monitor thread body (spawned only when a heartbeat
    /// deadline is configured): beacon every live peer and convert a peer
    /// whose last-seen clock goes stale past `deadline` into a typed
    /// failure — bounded-time detection of wedged peers, well before the
    /// stall watchdog.
    fn heartbeat_loop(self: &Arc<Self>, deadline: Duration) {
        let tick = (deadline / 4).max(Duration::from_millis(1));
        loop {
            std::thread::sleep(tick);
            if self.peers_done.lock().iter().all(|&d| d) {
                return;
            }
            for world in 0..self.world_size {
                if world == self.world_rank || self.peers_done.lock()[world] {
                    continue;
                }
                if !HEARTBEATS_MUTED.load(Ordering::Relaxed) {
                    // Best-effort: a dead link is the reader's EOF to report.
                    let _ = self.send_frame(world, &Frame::Heartbeat);
                }
                let idle = self.last_seen[world].lock().elapsed();
                if idle > deadline {
                    eprintln!(
                        "[sa_mpisim] rank {}: peer {world} silent for {:.3}s \
                         (heartbeat deadline {:.3}s) — declaring it failed",
                        self.world_rank,
                        idle.as_secs_f64(),
                        deadline.as_secs_f64()
                    );
                    self.sched.poison(world);
                    self.mark_peer_done(world);
                }
            }
        }
    }
}

/// The one-sided transport handed to [`Window`](crate::Window) /
/// [`PairedWindow`](crate::PairedWindow) by [`ProcComm::expose`].
struct ProcRemoteWindow {
    node: Arc<ProcNode>,
    /// Communicator rank → world rank.
    members: Arc<Vec<usize>>,
    /// Communicator rank → that rank's window id in *its* registry.
    win_ids: Vec<u64>,
}

impl RemoteWindow for ProcRemoteWindow {
    fn get_bytes(&self, rank: usize, part: usize, range: Range<usize>, out: &mut Vec<u8>) {
        let world = self.members[rank];
        let req_id = self.node.next_req.fetch_add(1, Ordering::SeqCst);
        let frame = Frame::GetReq {
            req_id,
            win_id: self.win_ids[rank],
            part: part as u32,
            start: range.start as u64,
            end: range.end as u64,
        };
        if self.node.send_droppable(world, &frame).is_err() {
            self.node.sched.poison(world);
        }
        let site = WaitSite::recv(world, req_id);
        match self
            .node
            .sched
            .park_until(&self.node.getresp.map, &self.node.getresp.cv, site, |m| {
                m.contains_key(&req_id)
            }) {
            Ok(()) => {
                let bytes = self
                    .node
                    .getresp
                    .map
                    .lock()
                    .remove(&req_id)
                    .expect("park_until observed the response");
                out.extend_from_slice(&bytes);
            }
            Err(e) => raise(e),
        }
    }
}

// ---------------------------------------------------------------------------
// The communicator
// ---------------------------------------------------------------------------

/// Control-plane tag namespace: bit 62 set, sequence number below. User
/// tags stay under 2^48 and collective tags set bit 63, so the spaces are
/// disjoint.
const CTRL: u64 = 1 << 62;

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One rank's handle on the **process-per-rank socket backend**.
///
/// Obtained inside [`Universe::run_procs`](crate::Universe::run_procs) /
/// [`Universe::try_run_procs`](crate::Universe::try_run_procs) closures
/// (or via `SA_BACKEND=procs` through
/// [`Universe::run_backend`](crate::Universe::run_backend)); cannot be
/// constructed directly. Implements the full [`Comm`] contract with
/// byte-identical accounting to the in-process backends; window exposure
/// goes through [`Comm::expose`] (this backend has no shared memory, so
/// [`Comm::exchange_arcs`] panics — no caller outside the in-process
/// internals uses it).
pub struct ProcComm {
    rank: usize,
    size: usize,
    comm_id: u64,
    /// Communicator rank → world rank.
    members: Arc<Vec<usize>>,
    node: Arc<ProcNode>,
    /// Shared across sub-communicators split from this one ("one NIC per
    /// rank"), like [`RankComm`](crate::RankComm).
    stats: Rc<StatsCell>,
    op_counter: Cell<u64>,
    ctrl_counter: Cell<u64>,
    pool: Arc<rayon::ThreadPool>,
}

impl ProcComm {
    fn world_of(&self, comm_rank: usize) -> usize {
        self.members[comm_rank]
    }

    /// The `(peer world rank, sequence number)` of every frame this rank's
    /// reliability layer retransmitted so far, in retransmission order.
    /// Always empty unless a lossy fault plan is armed — the observable
    /// surface of the seeded-replay tests ("the same drop plan retransmits
    /// the same frames").
    pub fn retransmit_log(&self) -> Vec<(u64, u64)> {
        self.node.retransmits.lock().clone()
    }

    fn next_ctrl(&self) -> u64 {
        let v = self.ctrl_counter.get();
        self.ctrl_counter.set(v + 1);
        v
    }

    fn push_local(&self, tag: u64, payload: Box<dyn Any + Send>) {
        let mut map = self.node.inbox.map.lock();
        map.entry((self.comm_id, self.rank as u64, tag))
            .or_default()
            .push_back(InPayload::Local(payload));
    }

    /// Park until a message under `key` is queued, then pop it. The only
    /// blocking point of the two-sided path — poison and watchdog flow
    /// through [`Scheduler::park_until`] exactly as in-process.
    fn pop_message(&self, key: MsgKey, site: WaitSite) -> InPayload {
        let ready =
            |m: &HashMap<MsgKey, VecDeque<InPayload>>| m.get(&key).is_some_and(|q| !q.is_empty());
        if let Err(e) =
            self.node
                .sched
                .park_until(&self.node.inbox.map, &self.node.inbox.cv, site, ready)
        {
            raise(e);
        }
        self.node
            .inbox
            .map
            .lock()
            .get_mut(&key)
            .and_then(|q| q.pop_front())
            .expect("park_until observed a queued message")
    }

    fn send_wire_frame<T: Send + 'static>(
        &self,
        dst: usize,
        tag: u64,
        data: Vec<T>,
        metered: bool,
        meter_bytes: u64,
    ) {
        let codec = vec_codec::<T>().unwrap_or_else(|| {
            panic!(
                "ProcComm::send_vec::<{}>: element type not in the wire codec \
                 registry (crates/mpisim/src/wire.rs) — register it there to \
                 send it across a process boundary",
                std::any::type_name::<T>()
            )
        });
        let (count, payload) = (codec.encode)(&data as &(dyn Any + Send));
        let frame = Frame::Data {
            comm_id: self.comm_id,
            src: self.rank as u64,
            tag,
            metered,
            meter_bytes,
            type_fp: codec.fp,
            count,
            payload,
        };
        let world = self.world_of(dst);
        if self.node.send_droppable(world, &frame).is_err() {
            // Dead socket: the peer is gone. Name the job's victim and
            // unwind — a send can no longer be "eager and never blocks"
            // when the destination no longer exists.
            self.node.sched.poison(world);
            let victim = self.node.sched.poison_victim().unwrap_or(world);
            raise(CommError::PeerFailed {
                rank: victim,
                primitive: Primitive::Recv,
            });
        }
    }

    /// Unmetered control-plane send of a `u64` vector (collective
    /// bookkeeping: barrier, split, expose). Not visible in [`CommStats`] —
    /// the in-process backends' rendezvous (`exchange_arcs`, barrier
    /// generations) is equally invisible, which is what keeps the
    /// accounting byte-identical across backends.
    fn ctrl_send(&self, dst: usize, seq: u64, data: Vec<u64>) {
        let tag = CTRL | seq;
        if dst == self.rank {
            self.push_local(tag, Box::new(data));
        } else {
            self.send_wire_frame(dst, tag, data, false, 0);
        }
    }

    fn ctrl_recv(&self, src: usize, seq: u64, site: WaitSite) -> Vec<u64> {
        let key = (self.comm_id, src as u64, CTRL | seq);
        match self.pop_message(key, site) {
            InPayload::Local(any) => *any.downcast::<Vec<u64>>().expect("ctrl payload type"),
            InPayload::Remote {
                type_fp,
                count,
                bytes,
                ..
            } => {
                let codec = vec_codec::<u64>().expect("u64 codec registered");
                assert_eq!(type_fp, codec.fp, "ctrl payload type mismatch");
                *(codec.decode)(count, &bytes)
                    .expect("ctrl payload decode")
                    .downcast::<Vec<u64>>()
                    .expect("ctrl payload type")
            }
        }
    }

    /// Control-plane allgather (linear through communicator rank 0), used
    /// by `barrier`/`split`/`expose`. Collective: every rank calls it in
    /// the same order, so one `next_ctrl` pair stays aligned.
    fn ctrl_allgather(&self, mine: Vec<u64>, site: fn() -> WaitSite) -> Vec<Vec<u64>> {
        let gather_seq = self.next_ctrl();
        let release_seq = self.next_ctrl();
        if self.rank == 0 {
            let mut all = vec![mine];
            for src in 1..self.size {
                all.push(self.ctrl_recv(src, gather_seq, site()));
            }
            // Flatten as [len, vals...] per rank for the release broadcast.
            let mut flat = Vec::new();
            for v in &all {
                flat.push(v.len() as u64);
                flat.extend_from_slice(v);
            }
            for dst in 1..self.size {
                self.ctrl_send(dst, release_seq, flat.clone());
            }
            all
        } else {
            self.ctrl_send(0, gather_seq, mine);
            let flat = self.ctrl_recv(0, release_seq, site());
            let mut all = Vec::with_capacity(self.size);
            let mut i = 0usize;
            while i < flat.len() {
                let len = flat[i] as usize;
                all.push(flat[i + 1..i + 1 + len].to_vec());
                i += 1 + len;
            }
            assert_eq!(all.len(), self.size, "ctrl allgather shape");
            all
        }
    }
}

impl Comm for ProcComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn stats(&self) -> CommStats {
        self.stats.snapshot()
    }

    fn pool(&self) -> &rayon::ThreadPool {
        &self.pool
    }

    fn barrier(&self) {
        self.node.sched.check_healthy(Primitive::Barrier);
        // Linear rendezvous through communicator rank 0, all control-plane
        // (unmetered), parking under the barrier wait-site so failures
        // surface as PeerFailed{primitive: Barrier} like in-process.
        self.ctrl_allgather(Vec::new(), WaitSite::barrier);
    }

    fn send_vec<T: Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        assert!(
            dst < self.size,
            "send_vec to rank {dst}, communicator has {}",
            self.size
        );
        if dst == self.rank {
            // Self-sends are free and never serialized (matching RankComm).
            self.push_local(tag, Box::new(data));
            return;
        }
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.stats.record_send(bytes as usize);
        self.send_wire_frame(dst, tag, data, true, bytes);
    }

    fn recv_vec<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        assert!(
            src < self.size,
            "recv_vec from rank {src}, communicator has {}",
            self.size
        );
        let key = (self.comm_id, src as u64, tag);
        let site = WaitSite::recv(self.world_of(src), tag);
        match self.pop_message(key, site) {
            InPayload::Local(any) => *any.downcast::<Vec<T>>().expect("message type mismatch"),
            InPayload::Remote {
                type_fp,
                count,
                bytes,
                meter_bytes,
            } => {
                if let Some(b) = meter_bytes {
                    self.stats.record_recv(b as usize);
                }
                let codec = vec_codec::<T>().unwrap_or_else(|| {
                    panic!(
                        "ProcComm::recv_vec::<{}>: element type not in the wire \
                         codec registry",
                        std::any::type_name::<T>()
                    )
                });
                assert_eq!(
                    type_fp, codec.fp,
                    "message type mismatch: receiver expects {}",
                    codec.type_name
                );
                *(codec.decode)(count, &bytes)
                    .expect("peer sent an undecodable payload")
                    .downcast::<Vec<T>>()
                    .expect("message type mismatch")
            }
        }
    }

    fn probe(&self, src: usize, tag: u64) -> bool {
        let key = (self.comm_id, src as u64, tag);
        self.node
            .inbox
            .map
            .lock()
            .get(&key)
            .is_some_and(|q| !q.is_empty())
    }

    fn split(&self, color: usize, key: usize) -> ProcComm {
        self.node.sched.check_healthy(Primitive::Exchange);
        let split_seq = self.ctrl_counter.get(); // pre-allgather, aligned across ranks
        let all = self.ctrl_allgather(vec![color as u64, key as u64], || WaitSite::exchange(0));
        let mut group: Vec<(u64, usize)> = all
            .iter()
            .enumerate()
            .filter(|(_, ck)| ck[0] == color as u64)
            .map(|(r, ck)| (ck[1], r))
            .collect();
        group.sort(); // by (key, old rank)
        let new_rank = group
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("own rank in own color group");
        let members: Vec<usize> = group.iter().map(|&(_, r)| self.world_of(r)).collect();
        let comm_id = mix64(
            self.comm_id ^ (split_seq << 20) ^ (color as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        ProcComm {
            rank: new_rank,
            size: members.len(),
            comm_id,
            members: Arc::new(members),
            node: self.node.clone(),
            stats: self.stats.clone(),
            op_counter: Cell::new(0),
            ctrl_counter: Cell::new(0),
            pool: self.pool.clone(),
        }
    }

    fn next_op(&self) -> u64 {
        let v = self.op_counter.get();
        self.op_counter.set(v + 1);
        v
    }

    fn exchange_arcs(&self, _value: Arc<dyn Any + Send + Sync>) -> Vec<Arc<dyn Any + Send + Sync>> {
        panic!(
            "ProcComm::exchange_arcs: ranks are separate OS processes and cannot \
             share Arcs; window exposure goes through Comm::expose (which this \
             backend implements natively) — nothing else should call exchange_arcs"
        );
    }

    fn record_get(&self, bytes: usize) {
        self.stats.record_get(bytes);
    }

    fn overlap_capable(&self) -> bool {
        // GetReq/GetResp round-trips are genuinely asynchronous socket
        // traffic; ProcRemoteWindow::get_bytes only touches internally
        // locked node state and parks under the parallel scheduler, so a
        // helper thread can drive fetches while the rank thread computes.
        true
    }

    fn expose(&self, spec: WindowSpec) -> Exposure {
        self.node.sched.check_healthy(Primitive::Exchange);
        // Register the deposit with the local progress engine first, so a
        // fast peer's get (issued right after the allgather releases it)
        // always finds the window.
        let win_id = self.node.next_win.fetch_add(1, Ordering::SeqCst);
        self.node.windows.lock().insert(
            win_id,
            RegisteredWindow {
                arc: spec.arc,
                parts: spec.parts.clone(),
                extract: spec.extract,
            },
        );
        let mut mine = vec![win_id];
        mine.extend(spec.parts.iter().map(|p| p.len as u64));
        let all = self.ctrl_allgather(mine, || WaitSite::exchange(0));
        let mut win_ids = Vec::with_capacity(self.size);
        let mut lens = Vec::with_capacity(self.size);
        for entry in &all {
            win_ids.push(entry[0]);
            lens.push(entry[1..].iter().map(|&l| l as usize).collect::<Vec<_>>());
        }
        Exposure::Remote {
            lens,
            transport: Arc::new(ProcRemoteWindow {
                node: self.node.clone(),
                members: self.members.clone(),
                win_ids,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Child-side launch
// ---------------------------------------------------------------------------

/// Build the mesh, run the rank closure, rendezvous, report, `_exit`.
/// Never returns; never unwinds past this frame.
#[allow(clippy::too_many_arguments)]
fn child_main<F, R>(
    rank: usize,
    nranks: usize,
    threads_per_rank: usize,
    watchdog: Option<Duration>,
    heartbeat: Option<Duration>,
    lossy: Option<Arc<FaultPlan>>,
    parent_addr: SocketAddr,
    f: &F,
) -> !
where
    F: Fn(&ProcComm) -> R + Send + Sync,
    R: Wire + Send,
{
    IN_FORKED_CHILD.store(true, Ordering::Relaxed);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        child_body(
            rank,
            nranks,
            threads_per_rank,
            watchdog,
            heartbeat,
            lossy,
            parent_addr,
            f,
        )
    }));
    // A panic escaping child_body means bootstrap itself failed (sockets,
    // fork siblings dead, ...) — nothing to report on, just die nonzero so
    // the parent classifies us from waitpid.
    match outcome {
        Ok(code) => unsafe { sys::_exit(code) },
        Err(_) => unsafe { sys::_exit(101) },
    }
}

#[allow(clippy::too_many_arguments)]
fn child_body<F, R>(
    rank: usize,
    nranks: usize,
    threads_per_rank: usize,
    watchdog: Option<Duration>,
    heartbeat: Option<Duration>,
    lossy: Option<Arc<FaultPlan>>,
    parent_addr: SocketAddr,
    f: &F,
) -> i32
where
    F: Fn(&ProcComm) -> R + Send + Sync,
    R: Wire + Send,
{
    // --- bootstrap: announce our mesh port, learn everyone's ---
    // Transient dial/accept failures (a sibling's listener not bound yet,
    // EINTR) get a bounded-backoff second chance instead of failing the
    // whole bootstrap; the total retry count is surfaced below.
    let transport = RetryPolicy::transport();
    let mut boot_retries = 0u32;
    let mesh_listener = TcpListener::bind("127.0.0.1:0").expect("bind mesh listener");
    let mesh_port = mesh_listener.local_addr().expect("mesh addr").port();
    let (mut parent, r) = connect_with_retry(parent_addr, &transport).expect("connect to parent");
    boot_retries += r;
    parent.set_nodelay(true).ok();
    write_frame(
        &mut parent,
        &Frame::Hello {
            rank: rank as u64,
            port: mesh_port,
        },
    )
    .expect("send hello");
    let ports = match read_frame(&mut parent) {
        Ok(Frame::Table { ports }) => ports,
        other => panic!("expected port table from parent, got {other:?}"),
    };
    assert_eq!(ports.len(), nranks, "port table size");

    // --- mesh: dial lower ranks, accept higher ranks ---
    let mut streams: Vec<Option<TcpStream>> = (0..nranks).map(|_| None).collect();
    for peer in 0..rank {
        let (mut s, r) = connect_with_retry(("127.0.0.1", ports[peer]), &transport)
            .unwrap_or_else(|e| panic!("dial peer {peer}: {e}"));
        boot_retries += r;
        s.set_nodelay(true).ok();
        write_frame(&mut s, &Frame::Peer { rank: rank as u64 }).expect("announce to peer");
        streams[peer] = Some(s);
    }
    for _ in rank + 1..nranks {
        let (mut s, r) = accept_with_retry(&mesh_listener, &transport).expect("accept peer");
        boot_retries += r;
        s.set_nodelay(true).ok();
        let peer = match read_frame(&mut s) {
            Ok(Frame::Peer { rank }) => rank as usize,
            other => panic!("expected peer announcement, got {other:?}"),
        };
        assert!(peer > rank && peer < nranks && streams[peer].is_none());
        streams[peer] = Some(s);
    }
    if boot_retries > 0 {
        eprintln!(
            "[sa_mpisim] rank {rank}: mesh bootstrap completed after \
             {boot_retries} transport retries"
        );
    }

    // --- progress engine ---
    let sched = Scheduler::parallel(nranks, watchdog);
    scheduler::set_world_rank(rank);
    let mut read_halves: Vec<Option<TcpStream>> = (0..nranks).map(|_| None).collect();
    let mut links: Vec<Option<Mutex<TcpStream>>> = Vec::with_capacity(nranks);
    for (peer, s) in streams.into_iter().enumerate() {
        match s {
            Some(s) => {
                read_halves[peer] = Some(s.try_clone().expect("clone link"));
                links.push(Some(Mutex::new(s)));
            }
            None => links.push(None),
        }
    }
    let mut peers_done = vec![false; nranks];
    peers_done[rank] = true;
    let node = Arc::new(ProcNode {
        world_rank: rank,
        world_size: nranks,
        sched: sched.clone(),
        links,
        inbox: Inbox {
            map: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        },
        getresp: GetRespMap {
            map: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        },
        windows: Mutex::new(HashMap::new()),
        next_win: AtomicU64::new(0),
        next_req: AtomicU64::new(0),
        peers_done: Mutex::new(peers_done),
        peers_done_cv: Condvar::new(),
        lossy,
        frames_sent: AtomicU64::new(0),
        send_links: (0..nranks)
            .map(|_| Mutex::new(SendLink::default()))
            .collect(),
        recv_links: (0..nranks)
            .map(|_| Mutex::new(RecvLink::default()))
            .collect(),
        retransmits: Mutex::new(Vec::new()),
        last_seen: (0..nranks).map(|_| Mutex::new(Instant::now())).collect(),
    });
    if node.lossy.is_some() {
        let n = node.clone();
        std::thread::Builder::new()
            .name(format!("sa-proc{rank}-sw"))
            .spawn(move || n.sweeper_loop())
            .expect("spawn sweeper");
    }
    if let Some(deadline) = heartbeat {
        let n = node.clone();
        std::thread::Builder::new()
            .name(format!("sa-proc{rank}-hb"))
            .spawn(move || n.heartbeat_loop(deadline))
            .expect("spawn heartbeat monitor");
    }
    for (peer, read) in read_halves.into_iter().enumerate() {
        if let Some(stream) = read {
            let getq = Arc::new(GetQueue {
                q: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            });
            let n1 = node.clone();
            let gq1 = getq.clone();
            std::thread::Builder::new()
                .name(format!("sa-proc{rank}-rd{peer}"))
                .spawn(move || n1.reader_loop(peer, stream, gq1))
                .expect("spawn reader");
            let n2 = node.clone();
            std::thread::Builder::new()
                .name(format!("sa-proc{rank}-rs{peer}"))
                .spawn(move || n2.responder_loop(peer, getq))
                .expect("spawn responder");
        }
    }

    // --- run the rank closure ---
    let pool = Arc::new(
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads_per_rank)
            .thread_name(move |i| format!("rank{rank}-w{i}"))
            .build()
            .expect("rank pool"),
    );
    let comm = ProcComm {
        rank,
        size: nranks,
        comm_id: 0,
        members: Arc::new((0..nranks).collect()),
        node: node.clone(),
        stats: Rc::new(StatsCell::default()),
        op_counter: Cell::new(0),
        ctrl_counter: Cell::new(0),
        pool,
    };
    let result: Result<R, RankError> =
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Poisons the job on unwind (during the catch) so the Abort
            // broadcast below always names a victim — same guard, same
            // ordering as the in-process rank threads.
            let _poison = PoisonGuard::new(&sched, rank);
            f(&comm)
        })) {
            Ok(v) => Ok(v),
            Err(payload) => Err(RankError::from_payload(payload.as_ref())),
        };

    // --- shutdown ---
    match &result {
        Ok(_) => {
            // Clean finish: say Bye, then keep serving window gets until
            // every peer has finished too (a rank must not exit while a
            // peer may still get from its exposed windows; FIFO sockets
            // guarantee no request follows a peer's Bye).
            node.send_frame_all(&Frame::Bye);
            let mut done = node.peers_done.lock();
            while !done.iter().all(|&d| d) && sched.poison_victim().is_none() {
                node.peers_done_cv
                    .wait_for(&mut done, Duration::from_millis(50));
            }
        }
        Err(_) => {
            // Tell everyone who the victim is (poison already set by the
            // guard; cascading failures keep naming the original). A peer
            // that died first (EPIPE on these writes) is ignored.
            let victim = sched.poison_victim().unwrap_or(rank);
            node.send_frame_all(&Frame::Abort {
                victim: victim as u64,
            });
        }
    }
    let payload = result.to_bytes();
    let _ = write_frame(&mut parent, &Frame::Outcome { payload });
    0
}

// ---------------------------------------------------------------------------
// Parent-side launch
// ---------------------------------------------------------------------------

/// Fork one process per rank, run `f` in each, and collect every rank's
/// typed outcome. Called by
/// [`Universe::try_run_procs`](crate::Universe::try_run_procs).
pub(crate) fn launch_procs<F, R>(
    nranks: usize,
    threads_per_rank: usize,
    watchdog: Option<Duration>,
    heartbeat: Option<Duration>,
    f: F,
) -> Vec<RankOutcome<R>>
where
    F: Fn(&ProcComm) -> R + Send + Sync,
    R: Wire + Send,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind rendezvous listener");
    let addr = listener.local_addr().expect("rendezvous addr");

    // The lossy-transport plan the children run under: what this thread
    // armed (tests), else the environment (CI soak jobs). Resolved before
    // the fork so every child inherits the same plan through its memory
    // snapshot.
    let lossy = crate::fault::armed_frame_plan()
        .or_else(|| crate::fault::frame_plan_from_env().map(Arc::new));

    let mut pids = Vec::with_capacity(nranks);
    for rank in 0..nranks {
        match unsafe { sys::fork() } {
            0 => child_main(
                rank,
                nranks,
                threads_per_rank,
                watchdog,
                heartbeat,
                lossy.clone(),
                addr,
                &f,
            ),
            pid if pid > 0 => pids.push(pid),
            _ => panic!("fork failed (rank {rank})"),
        }
    }

    // Rendezvous: collect every child's Hello, answer with the port table.
    let mut conns: Vec<Option<TcpStream>> = (0..nranks).map(|_| None).collect();
    let mut ports = vec![0u16; nranks];
    for _ in 0..nranks {
        let (mut s, _) =
            accept_with_retry(&listener, &RetryPolicy::transport()).expect("accept child");
        s.set_nodelay(true).ok();
        match read_frame(&mut s) {
            Ok(Frame::Hello { rank, port }) => {
                let rank = rank as usize;
                assert!(rank < nranks && conns[rank].is_none(), "duplicate hello");
                ports[rank] = port;
                conns[rank] = Some(s);
            }
            other => {
                // A child that connected but died (or spoke garbage) before
                // finishing its Hello. The parent must stay alive for the
                // survivors — drop the connection; the corpse is classified
                // from waitpid, and siblings dialing its unset (zero) port
                // exhaust their transport retries and die typed too.
                eprintln!(
                    "[sa_mpisim] bootstrap: dropping a connection with a bad hello: {other:?}"
                );
            }
        }
    }
    let table = Frame::Table {
        ports: ports.clone(),
    };
    for (rank, c) in conns.iter_mut().enumerate() {
        // A failed table send means that child is already gone; recovery
        // needs the parent intact, so propagate by emptying the slot (the
        // outcome collector then reports `None` and waitpid classifies the
        // corpse) instead of panicking the parent.
        let alive = match c.as_mut() {
            Some(s) => write_frame(s, &table).is_ok(),
            None => false,
        };
        if !alive && c.take().is_some() {
            eprintln!(
                "[sa_mpisim] bootstrap: table send to rank {rank} failed; child presumed dead"
            );
        }
    }

    // Collect outcomes concurrently (ranks finish in any order), then reap.
    let payloads: Vec<Option<Vec<u8>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = conns
            .into_iter()
            .map(|c| {
                scope.spawn(move || -> Option<Vec<u8>> {
                    // `None` (no connection, EOF, or garbage) defers to the
                    // waitpid classification below — never a parent panic.
                    let mut c = c?;
                    loop {
                        match read_frame(&mut c) {
                            Ok(Frame::Outcome { payload }) => break Some(payload),
                            Ok(_) => continue, // tolerate stray frames
                            Err(_) => break None,
                        }
                    }
                })
            })
            .collect();
        // A panicked collector thread (it has no panicking path, but the
        // parent must outlive a recovery attempt regardless) degrades to
        // `None` → typed waitpid classification, same as a dead socket.
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(None))
            .collect()
    });

    let mut outcomes = Vec::with_capacity(nranks);
    for (rank, (payload, pid)) in payloads.into_iter().zip(pids).enumerate() {
        let mut status = 0i32;
        let r = unsafe { sys::waitpid(pid, &mut status, 0) };
        outcomes.push(match payload {
            Some(bytes) => Result::<R, RankError>::from_bytes(&bytes).unwrap_or_else(|e| {
                Err(RankError::Panic {
                    summary: format!("rank {rank} sent an undecodable result: {e}"),
                })
            }),
            // Died without reporting: classify from the wait status — this
            // is the kill -9 / hard-crash path.
            None => Err(RankError::Panic {
                summary: if r != pid {
                    format!("rank {rank} vanished (waitpid failed)")
                } else if let Some(sig) = sys::term_signal(status) {
                    format!("rank {rank} killed by signal {sig}")
                } else {
                    format!(
                        "rank {rank} exited with code {} before reporting a result",
                        sys::exit_code(status).unwrap_or(-1)
                    )
                },
            }),
        });
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn procs_ring_and_identity() {
        let u = Universe::new(4);
        let got = u.run_procs(|comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_vec(next, 7, vec![comm.rank() as u64]);
            let from_prev = comm.recv_vec::<u64>(prev, 7);
            (comm.rank(), comm.size(), from_prev)
        });
        for (r, (rank, size, from_prev)) in got.iter().enumerate() {
            assert_eq!(*rank, r);
            assert_eq!(*size, 4);
            assert_eq!(from_prev, &vec![((r + 3) % 4) as u64]);
        }
    }

    #[test]
    fn procs_collectives_and_stats_match_sim() {
        fn workload<C: Comm>(comm: &C) -> (Vec<u64>, Vec<f64>, u64, (u64, u64), CommStats) {
            let r = comm.rank() as u64;
            let bcast = comm.bcast_vec(0, (comm.rank() == 0).then(|| vec![5u64, 6, 7]));
            comm.barrier();
            let reduced = comm.allreduce_vec(vec![r as f64, 1.0], |a, b| a + b);
            let all = comm.allgatherv(vec![r; comm.rank() + 1]);
            let flat: u64 = all.iter().flatten().sum();
            let scan = comm.exscan_sum(r + 1);
            let a2a = comm.alltoallv((0..comm.size()).map(|d| vec![r * 10 + d as u64]).collect());
            let a2a_sum: u64 = a2a.iter().flatten().sum();
            (bcast, reduced, flat + a2a_sum, scan, comm.stats())
        }
        let u = Universe::new(4);
        let sim = u.run(workload);
        let procs = u.run_procs(workload);
        assert_eq!(sim, procs, "outputs and per-rank stats must be identical");
    }

    #[test]
    fn procs_self_send_is_free_and_unserialized() {
        let u = Universe::new(2);
        let got = u.run_procs(|comm| {
            let before = comm.stats();
            // A type with no wire codec: must still work rank-locally.
            comm.send_vec(comm.rank(), 3, vec![(1u8, String::from("x"))]);
            let v = comm.recv_vec::<(u8, String)>(comm.rank(), 3);
            let d = comm.stats() - before;
            (v.len(), d.sent_msgs + d.recv_msgs + d.sent_bytes)
        });
        assert_eq!(got, vec![(1, 0), (1, 0)]);
    }

    #[test]
    fn procs_windows_serve_ranged_gets() {
        use crate::{PairedWindow, Window};
        let u = Universe::new(3);
        let got = u.run_procs(|comm| {
            let data: Vec<u64> = (0..10).map(|i| (comm.rank() * 100 + i) as u64).collect();
            let win = Window::create(comm, data);
            let slice = win.get(comm, 1, 2..5);
            let before = comm.stats();
            let _ = win.get(comm, (comm.rank() + 1) % 3, 0..4); // remote: 32 B
            let _ = win.get(comm, comm.rank(), 0..4); // local: free
            let empty = win.get(comm, (comm.rank() + 1) % 3, 2..2);
            let d = comm.stats() - before;
            let pw = PairedWindow::create(
                comm,
                vec![comm.rank() as u32; 4],
                vec![comm.rank() as f64 + 0.5; 4],
            );
            let (mut a, mut b) = (Vec::new(), Vec::new());
            pw.get_both_into(comm, (comm.rank() + 2) % 3, 1..3, &mut a, &mut b)
                .unwrap();
            comm.barrier();
            (slice, d, empty.len(), a, b)
        });
        for (r, (slice, d, empty_len, a, b)) in got.iter().enumerate() {
            assert_eq!(slice, &vec![102, 103, 104]);
            assert_eq!((d.rdma_gets, d.rdma_get_bytes), (2, 32), "rank {r}");
            assert_eq!(*empty_len, 0);
            let src = (r + 2) % 3;
            assert_eq!(a, &vec![src as u32; 2]);
            assert_eq!(b, &vec![src as f64 + 0.5; 2]);
        }
    }

    #[test]
    fn procs_split_matches_sim() {
        fn workload<C: Comm>(comm: &C) -> (usize, usize, Vec<u64>, CommStats) {
            let row = comm.split(comm.rank() / 2, comm.rank());
            let g = row.allgatherv(vec![comm.rank() as u64]);
            (
                row.rank(),
                row.size(),
                g.into_iter().flatten().collect(),
                comm.stats(),
            )
        }
        let u = Universe::new(4);
        let sim = u.run(workload);
        let procs = u.run_procs(workload);
        assert_eq!(sim, procs);
    }

    #[test]
    fn procs_abort_terminates_survivors_typed() {
        use crate::{FaultComm, FaultPlan};
        let u = Universe::new(3).with_watchdog(Some(Duration::from_secs(30)));
        let got = u.try_run_procs(|comm| {
            // Quiet the injected panic inside this child process only.
            std::panic::set_hook(Box::new(|_| {}));
            let fc = FaultComm::new(comm.split(0, comm.rank()), FaultPlan::abort_at(1, 2));
            for round in 0..4u64 {
                let v = fc.allreduce(round + fc.rank() as u64, |a, b| a + b);
                let _ = v;
            }
            fc.rank()
        });
        assert!(got[1].is_err(), "victim must fail: {:?}", got[1]);
        for r in [0, 2] {
            match &got[r] {
                Err(RankError::Comm(CommError::PeerFailed { rank, .. })) => {
                    assert_eq!(*rank, 1, "survivor {r} must name the victim")
                }
                other => panic!("survivor {r}: expected typed PeerFailed, got {other:?}"),
            }
        }
    }

    #[test]
    fn run_procs_panics_with_typed_payload() {
        let u = Universe::new(2).with_watchdog(Some(Duration::from_secs(30)));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            u.run_procs(|comm| {
                std::panic::set_hook(Box::new(|_| {}));
                if comm.rank() == 1 {
                    panic!("rank 1 gives up");
                }
                comm.barrier();
            })
        }))
        .unwrap_err();
        let summary = if let Some(s) = err.downcast_ref::<String>() {
            s.clone()
        } else if let Some(e) = err.downcast_ref::<CommError>() {
            e.to_string()
        } else {
            panic!("unexpected payload type");
        };
        assert!(
            summary.contains("rank 1") || summary.contains("peer rank 1"),
            "panic payload must name the failure: {summary}"
        );
    }
}
