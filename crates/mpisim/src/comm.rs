//! The per-rank communicator handles of the two in-process backends.
//!
//! [`RankComm<M>`] is one implementation shared by both backends — the
//! transport (mailbox hub), collective rendezvous (blackboard) and window
//! machinery are identical; the [`Mode`] parameter only selects how rank
//! *execution* is scheduled (see [`crate::scheduler`]):
//!
//! * [`SimComm`] (= `RankComm<Serial>`) — the serial rank-loop simulator.
//! * [`ThreadComm`] (= `RankComm<Threads>`) — truly-parallel threads.
//!
//! Because the data path is shared, the two backends are byte-identical in
//! everything the paper measures; they differ only in wall-clock.

use crate::backend::{Comm, Mode, Serial, Threads};
use crate::blackboard::Blackboard;
use crate::p2p::{Envelope, Hub};
use crate::scheduler::{RankBarrier, Scheduler};
use crate::stats::{CommStats, StatsCell};
use std::any::Any;
use std::cell::Cell;
use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::Arc;

/// State shared by all ranks of one communicator.
pub(crate) struct Shared {
    pub hub: Hub,
    pub barrier: RankBarrier,
    pub board: Blackboard,
    /// The job-wide execution scheduler: one per [`crate::Universe`] launch,
    /// shared by every communicator split from the world (the serial run
    /// permit must be global, or two sub-communicators could run two ranks
    /// at once).
    pub sched: Arc<Scheduler>,
}

impl Shared {
    pub fn new(n: usize, sched: Arc<Scheduler>) -> Arc<Shared> {
        Arc::new(Shared {
            hub: Hub::new(n),
            barrier: RankBarrier::new(n),
            board: Blackboard::new(),
            sched,
        })
    }
}

/// One rank's handle to a communicator on an in-process backend — the
/// analog of an `MPI_Comm` plus the rank's OpenMP pool. Lives on exactly
/// one thread (neither `Send` nor `Sync`: the stats counter models the
/// rank's NIC and is shared by `Rc` across communicators split from this
/// one, so traffic on a row/column sub-communicator still charges this
/// rank).
///
/// Use it through the [`Comm`] trait (algorithms) or the inherent mirror
/// methods (closures handed to [`crate::Universe::run`]); the two are the
/// same methods.
pub struct RankComm<M: Mode> {
    rank: usize,
    size: usize,
    pub(crate) shared: Arc<Shared>,
    pub(crate) stats: Rc<StatsCell>,
    pub(crate) op_counter: Cell<u64>,
    pool: Arc<rayon::ThreadPool>,
    _mode: PhantomData<M>,
}

/// The serial rank-loop **simulator** backend (the default): exactly one
/// rank executes at any instant; the run permit is handed over at blocking
/// communication calls. Wall-clock is the *sum* of rank work — fiction as
/// a time-to-solution, but per-rank timings are interference-free and all
/// metering is exact. Created by [`crate::Universe::run`].
pub type SimComm = RankComm<Serial>;

/// The truly-parallel **threads-as-ranks** backend: P OS threads sharing
/// one process, windows as `Arc`-shared read-only slices (gets are
/// memcpys), collectives on the same metered transport as [`SimComm`].
/// Wall-clock is real concurrent execution. Created by
/// [`crate::Universe::run_threads`].
pub type ThreadComm = RankComm<Threads>;

impl<M: Mode> RankComm<M> {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        shared: Arc<Shared>,
        pool: Arc<rayon::ThreadPool>,
    ) -> RankComm<M> {
        RankComm {
            rank,
            size,
            shared,
            stats: Rc::new(StatsCell::default()),
            op_counter: Cell::new(0),
            pool,
            _mode: PhantomData,
        }
    }

    fn with_stats(
        rank: usize,
        size: usize,
        shared: Arc<Shared>,
        pool: Arc<rayon::ThreadPool>,
        stats: Rc<StatsCell>,
    ) -> RankComm<M> {
        RankComm {
            rank,
            size,
            shared,
            stats,
            op_counter: Cell::new(0),
            pool,
            _mode: PhantomData,
        }
    }
}

impl<M: Mode> Comm for RankComm<M> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn stats(&self) -> CommStats {
        self.stats.snapshot()
    }

    fn pool(&self) -> &rayon::ThreadPool {
        &self.pool
    }

    fn barrier(&self) {
        self.shared.barrier.wait(&self.shared.sched);
    }

    fn send_vec<T: Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        let bytes = data.len() * std::mem::size_of::<T>();
        if dst != self.rank {
            self.stats.record_send(bytes);
        }
        self.shared.hub.send(
            self.rank,
            dst,
            tag,
            Envelope {
                bytes,
                payload: Box::new(data),
            },
        );
    }

    fn recv_vec<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        let env = self
            .shared
            .hub
            .recv(self.rank, src, tag, &self.shared.sched);
        if src != self.rank {
            self.stats.record_recv(env.bytes);
        }
        *env.payload
            .downcast::<Vec<T>>()
            .expect("message type mismatch: recv_vec::<T> on a different payload")
    }

    fn probe(&self, src: usize, tag: u64) -> bool {
        self.shared.hub.probe(self.rank, src, tag)
    }

    fn next_op(&self) -> u64 {
        let id = self.op_counter.get();
        self.op_counter.set(id + 1);
        id
    }

    fn exchange_arcs(&self, value: Arc<dyn Any + Send + Sync>) -> Vec<Arc<dyn Any + Send + Sync>> {
        let op = self.next_op() | (1 << 62); // namespace apart from p2p tags
        self.shared
            .board
            .exchange(op, self.size, self.rank, value, &self.shared.sched)
    }

    fn record_get(&self, bytes: usize) {
        self.stats.record_get(bytes);
    }

    fn overlap_capable(&self) -> bool {
        // Window gets are Arc-shared memcpys — safe from a helper thread
        // under the parallel scheduler. The serial simulator stays in-order
        // so runs remain deterministic (and gets never block there anyway).
        !M::SERIAL
    }

    fn split(&self, color: usize, key: usize) -> RankComm<M> {
        // Round 1: learn everyone's (color, key).
        let mine = Arc::new((color, key, self.rank));
        let all = Comm::exchange_arcs(self, mine);
        let infos: Vec<(usize, usize, usize)> = all
            .into_iter()
            .map(|a| *a.downcast::<(usize, usize, usize)>().unwrap())
            .collect();
        let mut group: Vec<(usize, usize, usize)> = infos
            .iter()
            .copied()
            .filter(|&(c, _, _)| c == color)
            .collect();
        group.sort_by_key(|&(_, k, r)| (k, r));
        let new_rank = group
            .iter()
            .position(|&(_, _, r)| r == self.rank)
            .expect("self in own color group");
        let group_size = group.len();
        let leader = group[0].2;

        // Round 2: each color's leader publishes the new Shared.
        let deposit: Arc<dyn Any + Send + Sync> = if self.rank == leader {
            Arc::new(Some((
                color,
                Shared::new(group_size, self.shared.sched.clone()),
            )))
        } else {
            Arc::new(None::<(usize, Arc<Shared>)>)
        };
        let published = Comm::exchange_arcs(self, deposit);
        let mut my_shared: Option<Arc<Shared>> = None;
        for p in published {
            if let Some((c, s)) = p
                .downcast::<Option<(usize, Arc<Shared>)>>()
                .unwrap()
                .as_ref()
            {
                if *c == color {
                    my_shared = Some(s.clone());
                }
            }
        }
        RankComm::with_stats(
            new_rank,
            group_size,
            my_shared.expect("leader published shared state"),
            self.pool.clone(),
            self.stats.clone(), // one NIC per rank: sub-comm traffic counts here
        )
    }
}

/// Inherent mirrors of the [`Comm`] trait surface, so closures handed to
/// [`crate::Universe::run`] can call `comm.rank()` etc. without importing
/// the trait. Each method delegates to the trait implementation above.
impl<M: Mode> RankComm<M> {
    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        Comm::rank(self)
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        Comm::size(self)
    }

    /// Cumulative communication counters of this rank (on this
    /// communicator and windows created from it).
    pub fn stats(&self) -> CommStats {
        Comm::stats(self)
    }

    /// The rank's compute pool ("OpenMP threads"). See [`Comm::pool`].
    pub fn pool(&self) -> &rayon::ThreadPool {
        Comm::pool(self)
    }

    /// Execute `f` on this rank's compute pool.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        Comm::install(self, f)
    }

    /// Synchronize all ranks of this communicator.
    pub fn barrier(&self) {
        Comm::barrier(self)
    }

    /// Send a `Vec<T>` to `dst` under `tag` (two-sided, eager, non-blocking).
    pub fn send_vec<T: Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        Comm::send_vec(self, dst, tag, data)
    }

    /// Blocking receive of a `Vec<T>` from `(src, tag)`.
    pub fn recv_vec<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        Comm::recv_vec(self, src, tag)
    }

    /// Non-blocking: is a message from `(src, tag)` queued?
    pub fn probe(&self, src: usize, tag: u64) -> bool {
        Comm::probe(self, src, tag)
    }

    /// Split into sub-communicators by `color`, ranked by `(key, old
    /// rank)`. See [`Comm::split`].
    pub fn split(&self, color: usize, key: usize) -> RankComm<M> {
        Comm::split(self, color, key)
    }

    /// Broadcast from `root`; see [`Comm::bcast_vec`].
    pub fn bcast_vec<T: Clone + Send + 'static>(
        &self,
        root: usize,
        data: Option<Vec<T>>,
    ) -> Vec<T> {
        Comm::bcast_vec(self, root, data)
    }

    /// Gather at `root`; see [`Comm::gatherv`].
    pub fn gatherv<T: Send + 'static>(&self, root: usize, data: Vec<T>) -> Option<Vec<Vec<T>>> {
        Comm::gatherv(self, root, data)
    }

    /// Scatter from `root`; see [`Comm::scatterv`].
    pub fn scatterv<T: Send + 'static>(&self, root: usize, data: Option<Vec<Vec<T>>>) -> Vec<T> {
        Comm::scatterv(self, root, data)
    }

    /// All ranks receive every rank's vector; see [`Comm::allgatherv`].
    pub fn allgatherv<T: Clone + Send + 'static>(&self, data: Vec<T>) -> Vec<Vec<T>> {
        Comm::allgatherv(self, data)
    }

    /// Personalized all-to-all; see [`Comm::alltoallv`].
    pub fn alltoallv<T: Send + 'static>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        Comm::alltoallv(self, sends)
    }

    /// Reduce to `root`; see [`Comm::reduce`].
    pub fn reduce<T: Send + 'static>(
        &self,
        root: usize,
        value: T,
        op_fn: impl Fn(T, T) -> T,
    ) -> Option<T> {
        Comm::reduce(self, root, value, op_fn)
    }

    /// All-reduce single values; see [`Comm::allreduce`].
    pub fn allreduce<T: Clone + Send + 'static>(&self, value: T, op_fn: impl Fn(T, T) -> T) -> T {
        Comm::allreduce(self, value, op_fn)
    }

    /// Elementwise all-reduce; see [`Comm::allreduce_vec`].
    pub fn allreduce_vec<T: Clone + Send + 'static>(
        &self,
        value: Vec<T>,
        op_fn: impl Fn(&T, &T) -> T,
    ) -> Vec<T> {
        Comm::allreduce_vec(self, value, op_fn)
    }

    /// Exclusive prefix sum + total; see [`Comm::exscan_sum`].
    pub fn exscan_sum(&self, value: u64) -> (u64, u64) {
        Comm::exscan_sum(self, value)
    }
}
