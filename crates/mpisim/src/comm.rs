//! The per-rank communicator handle.

use crate::blackboard::Blackboard;
use crate::p2p::{Envelope, Hub};
use crate::stats::{CommStats, StatsCell};
use std::any::Any;
use std::cell::Cell;
use std::rc::Rc;
use std::sync::{Arc, Barrier};

/// State shared by all ranks of one communicator.
pub(crate) struct Shared {
    pub hub: Hub,
    pub barrier: Barrier,
    pub board: Blackboard,
}

impl Shared {
    pub fn new(n: usize) -> Arc<Shared> {
        Arc::new(Shared {
            hub: Hub::new(n),
            barrier: Barrier::new(n),
            board: Blackboard::new(),
        })
    }
}

/// One rank's handle to a communicator — the analog of an `MPI_Comm` plus
/// the rank's OpenMP pool. Lives on exactly one thread (neither `Send` nor
/// `Sync`: the stats counter models the rank's NIC and is shared by `Rc`
/// across communicators split from this one, so traffic on a row/column
/// sub-communicator still charges this rank).
pub struct Comm {
    rank: usize,
    size: usize,
    pub(crate) shared: Arc<Shared>,
    pub(crate) stats: Rc<StatsCell>,
    pub(crate) op_counter: Cell<u64>,
    pool: Arc<rayon::ThreadPool>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        shared: Arc<Shared>,
        pool: Arc<rayon::ThreadPool>,
    ) -> Comm {
        Comm {
            rank,
            size,
            shared,
            stats: Rc::new(StatsCell::default()),
            op_counter: Cell::new(0),
            pool,
        }
    }

    fn with_stats(
        rank: usize,
        size: usize,
        shared: Arc<Shared>,
        pool: Arc<rayon::ThreadPool>,
        stats: Rc<StatsCell>,
    ) -> Comm {
        Comm {
            rank,
            size,
            shared,
            stats,
            op_counter: Cell::new(0),
            pool,
        }
    }

    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Cumulative communication counters of this rank (on this
    /// communicator and windows created from it).
    pub fn stats(&self) -> CommStats {
        self.stats.snapshot()
    }

    /// The rank's compute pool ("OpenMP threads"). Run local kernels inside
    /// [`Comm::install`] so they use this pool, not the global one.
    pub fn pool(&self) -> &rayon::ThreadPool {
        &self.pool
    }

    /// Execute `f` on this rank's compute pool.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        self.pool.install(f)
    }

    /// Synchronize all ranks of this communicator.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Fresh collective-operation id; identical across ranks because MPI
    /// semantics require every rank to call collectives in the same order.
    pub(crate) fn next_op(&self) -> u64 {
        let id = self.op_counter.get();
        self.op_counter.set(id + 1);
        id
    }

    /// Send a `Vec<T>` to `dst` under `tag` (two-sided, eager, non-blocking).
    pub fn send_vec<T: Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        let bytes = data.len() * std::mem::size_of::<T>();
        if dst != self.rank {
            self.stats.record_send(bytes);
        }
        self.shared.hub.send(
            self.rank,
            dst,
            tag,
            Envelope {
                bytes,
                payload: Box::new(data),
            },
        );
    }

    /// Blocking receive of a `Vec<T>` from `(src, tag)`.
    pub fn recv_vec<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        let env = self.shared.hub.recv(self.rank, src, tag);
        if src != self.rank {
            self.stats.record_recv(env.bytes);
        }
        *env.payload
            .downcast::<Vec<T>>()
            .expect("message type mismatch: recv_vec::<T> on a different payload")
    }

    /// Non-blocking: is a message from `(src, tag)` queued?
    pub fn probe(&self, src: usize, tag: u64) -> bool {
        self.shared.hub.probe(self.rank, src, tag)
    }

    /// Simulation-internal zero-copy all-exchange of `Arc`s (not metered;
    /// see blackboard docs). Collective.
    pub(crate) fn exchange_arcs(
        &self,
        value: Arc<dyn Any + Send + Sync>,
    ) -> Vec<Arc<dyn Any + Send + Sync>> {
        let op = self.next_op() | (1 << 62); // namespace apart from p2p tags
        self.shared.board.exchange(op, self.size, self.rank, value)
    }

    /// Split into sub-communicators by `color`, ranked by `(key, old
    /// rank)` — the analog of `MPI_Comm_split`. Collective over all ranks.
    pub fn split(&self, color: usize, key: usize) -> Comm {
        // Round 1: learn everyone's (color, key).
        let mine = Arc::new((color, key, self.rank));
        let all = self.exchange_arcs(mine);
        let infos: Vec<(usize, usize, usize)> = all
            .into_iter()
            .map(|a| *a.downcast::<(usize, usize, usize)>().unwrap())
            .collect();
        let mut group: Vec<(usize, usize, usize)> = infos
            .iter()
            .copied()
            .filter(|&(c, _, _)| c == color)
            .collect();
        group.sort_by_key(|&(_, k, r)| (k, r));
        let new_rank = group
            .iter()
            .position(|&(_, _, r)| r == self.rank)
            .expect("self in own color group");
        let group_size = group.len();
        let leader = group[0].2;

        // Round 2: each color's leader publishes the new Shared.
        let deposit: Arc<dyn Any + Send + Sync> = if self.rank == leader {
            Arc::new(Some((color, Shared::new(group_size))))
        } else {
            Arc::new(None::<(usize, Arc<Shared>)>)
        };
        let published = self.exchange_arcs(deposit);
        let mut my_shared: Option<Arc<Shared>> = None;
        for p in published {
            if let Some((c, s)) = p
                .downcast::<Option<(usize, Arc<Shared>)>>()
                .unwrap()
                .as_ref()
            {
                if *c == color {
                    my_shared = Some(s.clone());
                }
            }
        }
        Comm::with_stats(
            new_rank,
            group_size,
            my_shared.expect("leader published shared state"),
            self.pool.clone(),
            self.stats.clone(), // one NIC per rank: sub-comm traffic counts here
        )
    }
}
