//! Point-to-point transport: per-rank mailboxes keyed by `(source, tag)`.
//!
//! Sends never block (unbounded queues), receives block until a matching
//! message arrives — MPI's eager-protocol semantics, which is what the
//! linear collective algorithms built on top assume for deadlock freedom.

use crate::error::{raise, Primitive};
use crate::scheduler::{Scheduler, WaitSite};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::{HashMap, VecDeque};

/// A type-erased message with its accounted size.
pub(crate) struct Envelope {
    pub bytes: usize,
    pub payload: Box<dyn Any + Send>,
}

#[derive(Default)]
struct MailboxInner {
    queues: HashMap<(usize, u64), VecDeque<Envelope>>,
}

#[derive(Default)]
struct Mailbox {
    inner: Mutex<MailboxInner>,
    cv: Condvar,
}

/// The transport fabric of one communicator: `n` mailboxes.
pub(crate) struct Hub {
    boxes: Vec<Mailbox>,
}

impl Hub {
    pub fn new(n: usize) -> Hub {
        Hub {
            boxes: (0..n).map(|_| Mailbox::default()).collect(),
        }
    }

    pub fn size(&self) -> usize {
        self.boxes.len()
    }

    /// Deposit a message for `dst`.
    pub fn send(&self, src: usize, dst: usize, tag: u64, env: Envelope) {
        let mbox = &self.boxes[dst];
        {
            let mut inner = mbox.inner.lock();
            inner.queues.entry((src, tag)).or_default().push_back(env);
        }
        mbox.cv.notify_all();
    }

    /// Block until a message from `(src, tag)` is available for `me`.
    ///
    /// Waiting goes through [`Scheduler::park_until`]: the run permit is
    /// handed back to `sched` so that in a serial universe the sender can
    /// execute, and reacquired (with no locks held, so a permit-holding
    /// sender can't deadlock against this mailbox's mutex) before the
    /// message is popped. Only rank `me`'s own thread receives from its
    /// mailbox, so a message observed before the reacquisition is still
    /// there after it. Unwinds with a typed [`CommError`](crate::CommError)
    /// if a peer dies or the watchdog expires while waiting.
    pub fn recv(&self, me: usize, src: usize, tag: u64, sched: &Scheduler) -> Envelope {
        let mbox = &self.boxes[me];
        sched.check_healthy(Primitive::Recv);
        loop {
            {
                let mut inner = mbox.inner.lock();
                if let Some(q) = inner.queues.get_mut(&(src, tag)) {
                    if let Some(env) = q.pop_front() {
                        if q.is_empty() {
                            inner.queues.remove(&(src, tag));
                        }
                        return env;
                    }
                }
            }
            if let Err(e) =
                sched.park_until(&mbox.inner, &mbox.cv, WaitSite::recv(src, tag), |inner| {
                    inner
                        .queues
                        .get(&(src, tag))
                        .map(|q| !q.is_empty())
                        .unwrap_or(false)
                })
            {
                raise(e);
            }
        }
    }

    /// Non-blocking probe: is a message from `(src, tag)` waiting?
    pub fn probe(&self, me: usize, src: usize, tag: u64) -> bool {
        let inner = self.boxes[me].inner.lock();
        inner
            .queues
            .get(&(src, tag))
            .map(|q| !q.is_empty())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sched() -> Arc<Scheduler> {
        Scheduler::parallel(2, None)
    }

    fn env<T: Send + 'static>(v: T, bytes: usize) -> Envelope {
        Envelope {
            bytes,
            payload: Box::new(v),
        }
    }

    #[test]
    fn send_then_recv_same_thread() {
        let hub = Hub::new(2);
        hub.send(0, 1, 7, env(vec![1u64, 2, 3], 24));
        let got = hub.recv(1, 0, 7, &sched());
        assert_eq!(got.bytes, 24);
        let v = got.payload.downcast::<Vec<u64>>().unwrap();
        assert_eq!(*v, vec![1, 2, 3]);
    }

    #[test]
    fn tags_do_not_cross() {
        let hub = Hub::new(2);
        hub.send(0, 1, 1, env(10i32, 4));
        hub.send(0, 1, 2, env(20i32, 4));
        let b = hub.recv(1, 0, 2, &sched());
        assert_eq!(*b.payload.downcast::<i32>().unwrap(), 20);
        let a = hub.recv(1, 0, 1, &sched());
        assert_eq!(*a.payload.downcast::<i32>().unwrap(), 10);
    }

    #[test]
    fn fifo_within_tag() {
        let hub = Hub::new(1);
        hub.send(0, 0, 0, env(1i32, 4));
        hub.send(0, 0, 0, env(2i32, 4));
        assert_eq!(
            *hub.recv(0, 0, 0, &sched())
                .payload
                .downcast::<i32>()
                .unwrap(),
            1
        );
        assert_eq!(
            *hub.recv(0, 0, 0, &sched())
                .payload
                .downcast::<i32>()
                .unwrap(),
            2
        );
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let hub = Arc::new(Hub::new(2));
        let h2 = hub.clone();
        let t = std::thread::spawn(move || {
            let e = h2.recv(1, 0, 5, &sched());
            *e.payload.downcast::<&'static str>().unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        hub.send(0, 1, 5, env("hello", 5));
        assert_eq!(t.join().unwrap(), "hello");
    }

    #[test]
    fn probe_reflects_queue() {
        let hub = Hub::new(2);
        assert!(!hub.probe(1, 0, 3));
        hub.send(0, 1, 3, env((), 0));
        assert!(hub.probe(1, 0, 3));
        let _ = hub.recv(1, 0, 3, &sched());
        assert!(!hub.probe(1, 0, 3));
    }
}
