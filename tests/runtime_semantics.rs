//! Simulated-runtime semantics the distributed algorithms rely on:
//! paired windows, degenerate 1D layouts, collective algebra, and
//! failure injection at the crate boundary.
//!
//! Backend policy: this suite tests `Universe::run` semantics through
//! in-process closures, so it honors the `SA_BACKEND` escape hatch for
//! the two in-process schedulers (`sim`, `threads`) and **explicitly pins
//! the serial scheduler, saying so once,** when the environment selects a
//! backend these closures cannot run on (`procs` — its coverage lives in
//! `backend_conformance.rs` and `fault_injection.rs`). See
//! [`run_in_process`].

use saspgemm::dist::{spgemm_1d, uniform_offsets, DistMat1D, Plan1D};
use saspgemm::mpisim::{Backend, PairedWindow, Serial, SimComm, Universe, Window};
use saspgemm::sparse::gen::{banded, erdos_renyi};
use saspgemm::sparse::{Csc, Dcsc};
use std::sync::Once;

/// The suite's runner: `Universe::run` when `SA_BACKEND` names an
/// in-process backend (unset, `sim`, or the `threads` upgrade), otherwise
/// a pinned `launch::<Serial>` with a one-time notice — never a silent
/// fallback, and never a panic inside the launcher.
fn run_in_process<R: Send>(u: &Universe, f: impl Fn(&SimComm) -> R + Send + Sync) -> Vec<R> {
    let be = Backend::from_env();
    if be.in_process() {
        return u.run(f);
    }
    static NOTE: Once = Once::new();
    NOTE.call_once(|| {
        eprintln!(
            "[runtime_semantics] SA_BACKEND={} is not an in-process backend; \
             this suite's closures cannot cross a process boundary, so it pins \
             the serial reference scheduler instead (procs coverage lives in \
             backend_conformance.rs and fault_injection.rs)",
            be.name()
        );
    });
    u.launch::<Serial, _, _>(f)
}

// ---------------------------------------------------------------------
// paired windows
// ---------------------------------------------------------------------

#[test]
fn paired_window_matches_two_plain_windows() {
    let u = Universe::new(3);
    let got = run_in_process(&u, |comm| {
        let ir: Vec<u32> = (0..20).map(|i| (comm.rank() * 1000 + i) as u32).collect();
        let num: Vec<f64> = (0..20).map(|i| (comm.rank() * 10 + i) as f64).collect();
        let paired = PairedWindow::create(comm, ir.clone(), num.clone());
        let w_ir = Window::create(comm, ir);
        let w_num = Window::create(comm, num);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        paired.get_both_into(comm, 2, 3..9, &mut a, &mut b).unwrap();
        let a2 = w_ir.get(comm, 2, 3..9);
        let b2 = w_num.get(comm, 2, 3..9);
        (a == a2, b == b2)
    });
    assert!(got.iter().all(|&(x, y)| x && y));
}

#[test]
fn paired_window_meters_two_messages_per_get() {
    let u = Universe::new(2);
    let got = run_in_process(&u, |comm| {
        let win = PairedWindow::create(comm, vec![1u32; 10], vec![2.0f64; 10]);
        let before = comm.stats();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        win.get_both_into(comm, 1 - comm.rank(), 0..10, &mut a, &mut b)
            .unwrap();
        // local reads are free
        win.get_both_into(comm, comm.rank(), 0..10, &mut a, &mut b)
            .unwrap();
        comm.stats() - before
    });
    for s in got {
        assert_eq!(s.rdma_gets, 2, "one message per exposed array");
        assert_eq!(s.rdma_get_bytes, 10 * 4 + 10 * 8);
    }
}

#[test]
fn paired_window_rejects_out_of_range_and_bad_rank() {
    let u = Universe::new(2);
    let got = run_in_process(&u, |comm| {
        let win = PairedWindow::create(
            comm,
            vec![0u32; comm.rank() * 2],
            vec![0f64; comm.rank() * 2],
        );
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let oor = win.get_both_into(comm, 0, 0..5, &mut a, &mut b).is_err();
        let bad = win.get_both_into(comm, 9, 0..1, &mut a, &mut b).is_err();
        (oor, bad)
    });
    assert!(got.iter().all(|&(o, b)| o && b));
}

#[test]
#[should_panic(expected = "parallel")]
fn paired_window_requires_parallel_arrays() {
    let u = Universe::new(1);
    run_in_process(&u, |comm| {
        let _ = PairedWindow::create(comm, vec![1u32; 3], vec![1.0f64; 4]);
    });
}

// ---------------------------------------------------------------------
// degenerate 1D layouts
// ---------------------------------------------------------------------

#[test]
fn empty_rank_slices_are_harmless() {
    // rank 1 owns zero columns of A and B; results must still be exact
    let a = erdos_renyi(24, 24, 3.0, 5);
    let expect = saspgemm::dist::reference::serial_spgemm(&a, &a);
    let u = Universe::new(3);
    let a2 = a.clone();
    let got = run_in_process(&u, move |comm| {
        let offsets = vec![0usize, 12, 12, 24];
        let da = DistMat1D::from_global(comm, &a2, &offsets);
        let (c, rep) = spgemm_1d(comm, &da, &da.clone(), &Plan1D::default());
        assert!(
            rep.fetched_bytes == 0 || comm.rank() != 1,
            "empty slice fetches nothing"
        );
        c.gather(comm)
    });
    assert_eq!(got[0].as_ref().unwrap(), &expect);
}

#[test]
fn more_ranks_than_columns() {
    let a = erdos_renyi(6, 6, 2.0, 8);
    let expect = saspgemm::dist::reference::serial_spgemm(&a, &a);
    let u = Universe::new(8); // 8 ranks, 6 columns: two ranks idle
    let a2 = a.clone();
    let got = run_in_process(&u, move |comm| {
        let offsets = uniform_offsets(6, comm.size());
        let da = DistMat1D::from_global(comm, &a2, &offsets);
        let (c, _) = spgemm_1d(comm, &da, &da.clone(), &Plan1D::default());
        c.gather(comm)
    });
    assert_eq!(got[0].as_ref().unwrap(), &expect);
}

#[test]
fn single_column_per_rank() {
    let a = banded(5, 2, 1.0, true, 2);
    let expect = saspgemm::dist::reference::serial_spgemm(&a, &a);
    let u = Universe::new(5);
    let a2 = a.clone();
    let got = run_in_process(&u, move |comm| {
        let da = DistMat1D::from_global(comm, &a2, &uniform_offsets(5, 5));
        let (c, _) = spgemm_1d(comm, &da, &da.clone(), &Plan1D::default());
        c.gather(comm)
    });
    assert_eq!(got[0].as_ref().unwrap(), &expect);
}

// ---------------------------------------------------------------------
// collective algebra the algorithms depend on
// ---------------------------------------------------------------------

#[test]
fn allreduce_tuple_matches_two_scalars() {
    // spgemm_1d's global stats use a tuple allreduce; verify against parts
    let u = Universe::new(4);
    let got = run_in_process(&u, |comm| {
        let r = comm.rank() as u64;
        let pair = comm.allreduce((r, 10 * r), |x, y| (x.0 + y.0, x.1 + y.1));
        let a = comm.allreduce(r, |x, y| x + y);
        let b = comm.allreduce(10 * r, |x, y| x + y);
        (pair, a, b)
    });
    for (pair, a, b) in got {
        assert_eq!(pair, (a, b));
        assert_eq!(pair, (6, 60));
    }
}

#[test]
fn concurrent_universes_do_not_interfere() {
    // two simulated jobs running at once on separate threads (benches do
    // this implicitly when criterion warms up while another job drains)
    let t1 = std::thread::spawn(|| {
        let u = Universe::new(3);
        run_in_process(&u, |comm| {
            comm.allreduce(comm.rank() as u64 + 1, |x, y| x + y)
        })
    });
    let t2 = std::thread::spawn(|| {
        let u = Universe::new(5);
        run_in_process(&u, |comm| {
            comm.allreduce(comm.rank() as u64 + 1, |x, y| x + y)
        })
    });
    assert!(t1.join().unwrap().iter().all(|&x| x == 6));
    assert!(t2.join().unwrap().iter().all(|&x| x == 15));
}

#[test]
fn stats_deltas_are_monotone_and_additive() {
    let a = banded(60, 4, 1.0, true, 9);
    let u = Universe::new(4);
    let got = run_in_process(&u, move |comm| {
        let s0 = comm.stats();
        let da = DistMat1D::from_global(comm, &a, &uniform_offsets(60, 4));
        let (_, rep1) = spgemm_1d(comm, &da, &da.clone(), &Plan1D::default());
        let s1 = comm.stats();
        let (_, rep2) = spgemm_1d(comm, &da, &da.clone(), &Plan1D::default());
        let s2 = comm.stats();
        let d1 = s1 - s0;
        let d2 = s2 - s1;
        // identical multiplies → identical metered traffic, and the raw
        // counters never decrease
        (
            rep1.fetched_bytes,
            rep2.fetched_bytes,
            d1.rdma_get_bytes,
            d2.rdma_get_bytes,
        )
    });
    for (f1, f2, d1, d2) in got {
        assert_eq!(f1, f2);
        assert_eq!(d1, d2);
        assert_eq!(d1, f1, "metered == planned");
    }
}

// ---------------------------------------------------------------------
// DCSC ↔ window round trip (what Algorithm 1 exposes)
// ---------------------------------------------------------------------

#[test]
fn exposed_dcsc_arrays_reassemble_to_original_columns() {
    let a = erdos_renyi(30, 40, 2.5, 13);
    let u = Universe::new(4);
    let a2 = a.clone();
    let got = run_in_process(&u, move |comm| {
        let offsets = uniform_offsets(40, 4);
        let da = DistMat1D::from_global(comm, &a2, &offsets);
        let local = da.local().clone();
        let win = PairedWindow::create(comm, local.ir().to_vec(), local.num().to_vec());
        // every rank fetches rank 2's whole exposure and rebuilds its slice
        let len = win.len_of(2);
        let (mut ir, mut num) = (Vec::new(), Vec::new());
        win.get_both_into(comm, 2, 0..len, &mut ir, &mut num)
            .unwrap();
        (ir, num)
    });
    let slice = a.extract_cols(20, 30); // rank 2's columns under uniform(40,4)
    let d = Dcsc::from_csc(&slice);
    for (ir, num) in got {
        assert_eq!(ir, d.ir());
        assert_eq!(num, d.num());
    }
}

// ---------------------------------------------------------------------
// failure injection at the API boundary
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "A is")]
fn dimension_mismatch_reported_with_shapes() {
    let a = erdos_renyi(10, 12, 2.0, 1);
    let b = erdos_renyi(10, 12, 2.0, 2); // 12 ≠ 10: A·B invalid
    let u = Universe::new(2);
    run_in_process(&u, move |comm| {
        let da = DistMat1D::from_global(comm, &a, &uniform_offsets(12, 2));
        let db = DistMat1D::from_global(comm, &b, &uniform_offsets(12, 2));
        let _ = spgemm_1d(comm, &da, &db, &Plan1D::default());
    });
}

#[test]
#[should_panic(expected = "offsets")]
fn offsets_must_cover_all_columns() {
    let a: Csc<f64> = erdos_renyi(8, 8, 2.0, 3);
    let u = Universe::new(2);
    run_in_process(&u, move |comm| {
        let _ = DistMat1D::from_global(comm, &a, &[0, 4, 7]); // 7 ≠ 8
    });
}
