//! Zero-allocation steady state of the workspace arena (the PR 3
//! acceptance criterion): once a session's pools are warm, further
//! multiplies perform no per-thread scratch, chunk-output, or index-buffer
//! allocations — the reuse counters move, the alloc counters do not.

use saspgemm::dist::{uniform_offsets, CacheConfig, DistMat1D, Plan1D, SpgemmSession};
use saspgemm::mpisim::Universe;
use saspgemm::sparse::gen::erdos_renyi;
use saspgemm::sparse::semiring::PlusTimes;
use saspgemm::sparse::spgemm::{spgemm_with, Kernel, Schedule, SpgemmWorkspace, WorkspaceCounters};

#[test]
fn session_steady_state_allocates_nothing() {
    let a = erdos_renyi(160, 160, 5.0, 17);
    let u = Universe::new(3);
    let results = u.run(|comm| {
        let offsets = uniform_offsets(160, comm.size());
        let da = DistMat1D::from_global(comm, &a, &offsets);
        let db = da.clone();
        let mut s = SpgemmSession::create(
            comm,
            da,
            Plan1D {
                global_stats: false,
                ..Default::default()
            },
            CacheConfig::unlimited(),
        );
        // two warm-up iterations: the first populates the pools, the
        // second settles sizes (e.g. Ã shrinks once the cache serves hits)
        let (c1, _) = s.multiply(comm, &db);
        let (_c2, _) = s.multiply(comm, &db);
        let warm: WorkspaceCounters = s.workspace().counters();
        let mut last = None;
        for _ in 0..4 {
            let (c, rep) = s.multiply(comm, &db);
            assert_eq!(rep.fresh_bytes, 0, "warm cache refetches nothing");
            last = Some(c);
        }
        let steady = s.workspace().counters();
        (
            c1.into_local_csc(),
            last.unwrap().into_local_csc(),
            warm,
            steady,
        )
    });
    for (first, last, warm, steady) in results {
        assert_eq!(first, last, "steady-state iterations stay correct");
        assert!(warm.total_allocs() > 0, "warm-up does allocate");
        assert_eq!(
            steady.scratch_allocs, warm.scratch_allocs,
            "steady state creates no per-thread scratch"
        );
        assert_eq!(
            steady.chunk_allocs, warm.chunk_allocs,
            "steady state creates no chunk-output buffers"
        );
        assert_eq!(
            steady.idx_allocs, warm.idx_allocs,
            "steady state creates no index buffers"
        );
        assert!(
            steady.scratch_reuses > warm.scratch_reuses && steady.chunk_reuses > warm.chunk_reuses,
            "steady state is served from the pools"
        );
    }
}

#[test]
fn local_kernel_steady_state_allocates_nothing_across_thread_counts() {
    let a = erdos_renyi(300, 300, 6.0, 9);
    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let ws = SpgemmWorkspace::new();
        let first = pool.install(|| {
            spgemm_with::<PlusTimes<f64>, _, _>(&a, &a, Kernel::Hybrid, Schedule::FlopBalanced, &ws)
        });
        let warm = ws.counters();
        for _ in 0..3 {
            let c = pool.install(|| {
                spgemm_with::<PlusTimes<f64>, _, _>(
                    &a,
                    &a,
                    Kernel::Hybrid,
                    Schedule::FlopBalanced,
                    &ws,
                )
            });
            assert_eq!(c, first);
        }
        let steady = ws.counters();
        // chunk/index buffers are taken and returned within one multiply,
        // so their alloc counts freeze exactly after warm-up; per-thread
        // scratch is held for a worker's whole run, so the pool converges
        // to at most one scratch per worker slot (how fast depends on
        // worker overlap) and can never exceed `threads` lifetime allocs
        assert_eq!(steady.chunk_allocs, warm.chunk_allocs, "{threads} threads");
        assert_eq!(steady.idx_allocs, warm.idx_allocs, "{threads} threads");
        assert!(
            steady.scratch_allocs <= threads as u64,
            "{threads} threads: scratch allocs bounded by worker slots, got {}",
            steady.scratch_allocs
        );
    }
}

#[test]
fn ephemeral_and_warm_workspaces_agree() {
    // spgemm_kernel (ephemeral arena) vs a long-lived arena: same bits
    let a = erdos_renyi(90, 90, 4.0, 3);
    let ws = SpgemmWorkspace::new();
    let warm1 =
        spgemm_with::<PlusTimes<f64>, _, _>(&a, &a, Kernel::Hybrid, Schedule::FlopBalanced, &ws);
    let warm2 =
        spgemm_with::<PlusTimes<f64>, _, _>(&a, &a, Kernel::Hybrid, Schedule::FlopBalanced, &ws);
    let ephemeral = saspgemm::sparse::spgemm::spgemm::<PlusTimes<f64>, _, _>(&a, &a);
    assert_eq!(warm1, warm2);
    assert_eq!(warm1, ephemeral);
}
