//! The column-net hypergraph model (partition crate) must price the
//! sparsity-aware 1D algorithm's communication **exactly**: for any square
//! matrix and any contiguous 1D layout, the connectivity metric
//! `Σ cost(net)·(λ−1)` equals the volume Algorithm 1 fetches in
//! column-exact mode. This ties the §II-B model to the §III implementation.

use proptest::prelude::*;
use saspgemm::dist::{spgemm_1d, DistMat1D, FetchMode, Plan1D};
use saspgemm::mpisim::Universe;
use saspgemm::partition::{
    connectivity_volume, partition_hypergraph, partition_to_perm, HyperConfig, Hypergraph,
};
use saspgemm::sparse::gen::sbm;
use saspgemm::sparse::permute::permute_symmetric;
use saspgemm::sparse::spgemm::Kernel;
use saspgemm::sparse::{Coo, Csc};

/// Column-exact squaring fetch volume in nnz units (12 B per nnz).
fn fetched_nnz(a: &Csc<f64>, offsets: &[usize]) -> u64 {
    let p = offsets.len() - 1;
    let u = Universe::new(p);
    let a = a.clone();
    let offsets = offsets.to_vec();
    let reps = u.run(move |comm| {
        let da = DistMat1D::from_global(comm, &a, &offsets);
        let plan = Plan1D {
            fetch_mode: FetchMode::ColumnExact,
            kernel: Kernel::Hybrid,
            global_stats: true,
            ..Default::default()
        };
        let (_, rep) = spgemm_1d(comm, &da, &da.clone(), &plan);
        rep
    });
    reps[0].fetched_bytes_global / 12
}

/// Contiguous offsets → part id per column.
fn offsets_to_parts(offsets: &[usize], n: usize) -> Vec<u32> {
    (0..n)
        .map(|j| (offsets.partition_point(|&o| o <= j) - 1) as u32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn connectivity_metric_equals_column_exact_fetch_volume(
        seed in 0u64..10_000,
        n in 8usize..40,
        density in 1usize..5,
        p in 2usize..5,
    ) {
        // random square matrix
        let mut rng_state = seed;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng_state >> 33) as usize
        };
        let mut coo = Coo::new(n, n);
        for _ in 0..(n * density) {
            coo.push((next() % n) as u32, (next() % n) as u32, 1.0);
        }
        let a = coo.to_csc_with(|x, _| x);

        // random contiguous offsets covering n (some slices may be empty)
        let mut cuts: Vec<usize> = (0..p - 1).map(|_| next() % (n + 1)).collect();
        cuts.sort_unstable();
        let mut offsets = Vec::with_capacity(p + 1);
        offsets.push(0);
        offsets.extend(cuts);
        offsets.push(n);

        let h = Hypergraph::column_net_squaring(&a);
        let parts = offsets_to_parts(&offsets, n);
        let predicted = connectivity_volume(&h, &parts, p);
        let measured = fetched_nnz(&a, &offsets);
        prop_assert_eq!(
            predicted, measured,
            "model must price 1D fetch volume exactly (offsets {:?})", offsets
        );
    }
}

#[test]
fn hypergraph_partition_beats_natural_order_on_hidden_clusters() {
    // SBM with randomly relabeled vertices: natural (uniform) slices cut
    // every community; the hypergraph partitioner should recover most of
    // the planted structure and cut measured volume by a large factor.
    let a = sbm(1_600, 8, 12.0, 0.5, true, 3);
    let p = 8;
    let uniform: Vec<usize> = (0..=p).map(|r| r * a.ncols() / p).collect();
    let natural = fetched_nnz(&a, &uniform);

    let h = Hypergraph::column_net_squaring(&a);
    let parts = partition_hypergraph(&h, &HyperConfig::new(p));
    let layout = partition_to_perm(&parts, p);
    let ap = permute_symmetric(&a, &layout.perm);
    let partitioned = fetched_nnz(&ap, &layout.offsets);

    assert!(
        partitioned * 3 < natural,
        "hypergraph partitioning should cut volume ≥3x: {partitioned} vs {natural}"
    );
}

#[test]
fn model_price_of_permuted_matrix_matches_partition_assignment() {
    // Pricing the ORIGINAL matrix under the partition assignment must agree
    // with pricing the PERMUTED matrix under contiguous slices — the two
    // views of "apply this partition" used across the codebase.
    let a = sbm(600, 4, 10.0, 1.0, true, 11);
    let p = 4;
    let h = Hypergraph::column_net_squaring(&a);
    let parts = partition_hypergraph(&h, &HyperConfig::new(p));
    let layout = partition_to_perm(&parts, p);
    let by_assignment = connectivity_volume(&h, &parts, p);

    let ap = permute_symmetric(&a, &layout.perm);
    let hp = Hypergraph::column_net_squaring(&ap);
    let contiguous: Vec<u32> = (0..ap.ncols())
        .map(|j| (layout.offsets.partition_point(|&o| o <= j) - 1) as u32)
        .collect();
    let by_permutation = connectivity_volume(&hp, &contiguous, p);
    assert_eq!(by_assignment, by_permutation);
}
