//! Integration tests of the session/fetch-cache subsystem's accounting
//! contract: metered window traffic equals the *planned misses* to the
//! byte, across iterations, eviction, and the batched-BC workload.

use saspgemm::apps::bc::{bc_batches_1d_session, bc_serial, pick_sources};
use saspgemm::dist::{
    spgemm_1d, uniform_offsets, CacheConfig, DistMat1D, FetchMode, Plan1D, SpgemmSession,
};
use saspgemm::mpisim::Universe;
use saspgemm::sparse::gen::{erdos_renyi, rmat};
use saspgemm::sparse::{Coo, Csc, Vidx};

fn dist<C: saspgemm::mpisim::Comm>(comm: &C, a: &Csc<f64>) -> DistMat1D {
    DistMat1D::from_global(comm, a, &uniform_offsets(a.ncols(), comm.size()))
}

/// Metered bytes == planned misses, every iteration, for every fetch mode —
/// the cache must never desynchronize the analysis from the execution.
#[test]
fn metered_equals_planned_misses_across_iterations() {
    let a = erdos_renyi(120, 120, 4.0, 2);
    let b1 = erdos_renyi(120, 120, 3.0, 3);
    let b2 = erdos_renyi(120, 120, 3.0, 4);
    for mode in [
        FetchMode::FullMatrix,
        FetchMode::Block(8),
        FetchMode::ContiguousRuns,
        FetchMode::ColumnExact,
    ] {
        let u = Universe::new(4);
        let ok = u.run(|comm| {
            let da = dist(comm, &a);
            let (db1, db2) = (dist(comm, &b1), dist(comm, &b2));
            let plan = Plan1D {
                fetch_mode: mode,
                global_stats: false,
                ..Default::default()
            };
            let mut s = SpgemmSession::create(comm, da, plan, CacheConfig::unlimited());
            let mut planned_total = 0u64;
            let before_all = comm.stats();
            for b in [&db1, &db2, &db1, &db2] {
                let pre = s.analyze(comm, b);
                let before = comm.stats();
                let (_c, rep) = s.multiply(comm, b);
                let metered = comm.stats() - before;
                assert_eq!(
                    metered.rdma_get_bytes, pre.planned_fresh_bytes,
                    "{mode:?}: window traffic must equal the planned misses"
                );
                assert_eq!(metered.rdma_get_bytes, rep.fresh_bytes, "{mode:?}");
                assert_eq!(metered.rdma_gets, rep.rdma_msgs, "{mode:?}");
                assert_eq!(rep.comm.rdma_get_bytes, rep.fresh_bytes, "{mode:?}");
                assert_eq!(pre.cache_hit_bytes, rep.cache_hit_bytes, "{mode:?}");
                planned_total += pre.planned_fresh_bytes;
            }
            let all = comm.stats() - before_all;
            assert_eq!(all.rdma_get_bytes, planned_total, "{mode:?}: totals");
            assert_eq!(s.stats().fresh_bytes, planned_total, "{mode:?}");
            true
        });
        assert!(ok.into_iter().all(|x| x));
    }
}

/// The invariant survives an undersized budget: evictions force refetches,
/// and those refetches are planned (and metered) exactly like cold misses.
#[test]
fn eviction_forced_refetch_is_planned_exactly() {
    // alternating working sets with supports interleaved across ranks
    let a = erdos_renyi(96, 96, 4.0, 7);
    let half = |parity: u32| {
        let mut coo = Coo::new(96, 96);
        for j in 0..96u32 {
            coo.push(2 * (j % 48) + parity, j, 1.0);
        }
        coo.to_csc_with(|x: f64, _| x)
    };
    let (b_even, b_odd) = (half(0), half(1));
    let u = Universe::new(3);
    let got = u.run(|comm| {
        let da = dist(comm, &a);
        let (db_even, db_odd) = (dist(comm, &b_even), dist(comm, &b_odd));
        let plan = Plan1D {
            fetch_mode: FetchMode::ColumnExact,
            global_stats: false,
            ..Default::default()
        };
        let need = {
            let mut probe = SpgemmSession::create(comm, da.clone(), plan, CacheConfig::disabled());
            probe.multiply(comm, &db_even).1.needed_bytes
        };
        let mut s = SpgemmSession::create(comm, da, plan, CacheConfig::budget(need.max(12)));
        let mut refetched = 0u64;
        for b in [&db_even, &db_odd, &db_even, &db_odd, &db_even] {
            let pre = s.analyze(comm, b);
            let before = comm.stats();
            let (_c, rep) = s.multiply(comm, b);
            let metered = comm.stats() - before;
            assert_eq!(metered.rdma_get_bytes, pre.planned_fresh_bytes);
            assert_eq!(rep.fresh_bytes, pre.planned_fresh_bytes);
            refetched = rep.fresh_bytes; // last iteration's fresh volume
        }
        (need, refetched, s.cache().evicted_cols())
    });
    // at least one rank must have a nonempty remote working set, evict, and
    // pay a planned refetch on the final (previously seen) operand
    assert!(got.iter().any(|&(need, _, _)| need > 0));
    for (need, refetched, evicted) in got {
        if need == 0 {
            continue;
        }
        assert!(evicted > 0, "undersized budget must evict");
        assert!(refetched > 0, "evicted columns must be refetched");
    }
}

/// The ISSUE acceptance criterion: on the batched BC workload (tiny scale,
/// ≥ 4 iterations) the cache cuts cumulative fetched bytes to ≤ 50% of the
/// uncached run, with the session report totals exactly matching the
/// metered window traffic.
#[test]
fn bc_batched_cache_halves_cumulative_fetch_volume() {
    let a = rmat(8, 8, (0.57, 0.19, 0.19, 0.05), 42);
    let batches: Vec<Vec<Vidx>> = (0..4).map(|s| pick_sources(a.nrows(), 16, s)).collect();
    let u = Universe::new(4);
    let got = u.run(|comm| {
        let plan = Plan1D::default();
        let before = comm.stats();
        let (outcomes, cached) =
            bc_batches_1d_session(comm, &a, &batches, &plan, CacheConfig::unlimited());
        let metered_cached = comm.stats() - before;
        let before = comm.stats();
        let (_, uncached) =
            bc_batches_1d_session(comm, &a, &batches, &plan, CacheConfig::disabled());
        let metered_uncached = comm.stats() - before;
        // report totals == metered one-sided traffic, to the byte
        let c = cached.last().unwrap();
        let un = uncached.last().unwrap();
        assert_eq!(c.fresh_bytes(), metered_cached.rdma_get_bytes);
        assert_eq!(un.fresh_bytes(), metered_uncached.rdma_get_bytes);
        (outcomes, *c, *un)
    });
    // correctness rides along: every batch matches serial Brandes
    for (outcomes, _, _) in &got {
        for (o, sources) in outcomes.iter().zip(&batches) {
            let expect = bc_serial(&a, sources);
            assert!(
                o.scores
                    .iter()
                    .zip(&expect)
                    .all(|(x, y)| (x - y).abs() < 1e-9),
                "session BC scores must match serial"
            );
        }
    }
    let cached: u64 = got.iter().map(|(_, c, _)| c.fresh_bytes()).sum();
    let uncached: u64 = got.iter().map(|(_, _, u)| u.fresh_bytes()).sum();
    assert!(uncached > 0);
    assert!(
        cached * 2 <= uncached,
        "cached {cached} B must be ≤ 50% of uncached {uncached} B over ≥4 batches"
    );
}

/// Session multiplies return the same product as the sessionless engine,
/// warm or cold, and a sessionless call is byte-identical to a
/// disabled-cache session multiply.
#[test]
fn session_results_and_baseline_traffic_match_sessionless() {
    let a = erdos_renyi(90, 90, 3.5, 11);
    let b = erdos_renyi(90, 90, 2.5, 12);
    let u = Universe::new(3);
    let got = u.run(|comm| {
        let da = dist(comm, &a);
        let db = dist(comm, &b);
        let plan = Plan1D::default();
        let (c_ref, rep_ref) = spgemm_1d(comm, &da, &db, &plan);
        let mut off = SpgemmSession::create(comm, da.clone(), plan, CacheConfig::disabled());
        let mut on = SpgemmSession::create(comm, da, plan, CacheConfig::unlimited());
        let (c_off, rep_off) = off.multiply(comm, &db);
        let (_w, _) = on.multiply(comm, &db);
        let (c_on, rep_on) = on.multiply(comm, &db);
        (
            c_ref.gather(comm),
            c_off.gather(comm),
            c_on.gather(comm),
            rep_ref,
            rep_off,
            rep_on,
        )
    });
    let (c_ref, c_off, c_on, rep_ref, rep_off, rep_on) = &got[0];
    assert_eq!(c_off, c_ref, "disabled-cache session == sessionless result");
    assert_eq!(c_on, c_ref, "warm session == sessionless result");
    assert_eq!(rep_off.fresh_bytes, rep_ref.fetched_bytes);
    assert_eq!(rep_off.rdma_msgs, rep_ref.rdma_msgs);
    assert_eq!(rep_on.fresh_bytes, 0, "warm multiply is traffic-free");
}
