//! Property-style integration tests: the algebra is invariant under the
//! permutation strategies (P(AB)Pᵀ = (PAPᵀ)(PBPᵀ)), the prep pipeline
//! preserves results, and the partitioner's layouts are sound end-to-end.

use proptest::prelude::*;
use saspgemm::dist::reference::serial_spgemm;
use saspgemm::dist::{prepare, spgemm_1d, DistMat1D, Plan1D, Strategy as PrepStrategy};
use saspgemm::mpisim::Universe;
use saspgemm::partition::{partition_kway, partition_to_perm, Graph, PartitionConfig};
use saspgemm::sparse::gen::sbm;
use saspgemm::sparse::permute::permute_symmetric;
use saspgemm::sparse::{Coo, Csc, Perm};

/// Arbitrary small square sparse matrix.
fn arb_square(n: usize, nnz: usize) -> impl Strategy<Value = Csc<f64>> {
    proptest::collection::vec((0..n as u32, 0..n as u32, -3i32..=3), nnz).prop_map(move |tr| {
        let mut coo = Coo::new(n, n);
        for (r, c, v) in tr {
            if v != 0 {
                coo.push(r, c, v as f64);
            }
        }
        coo.to_csc_with(|a, b| a + b).filter(|_, _, v| v != 0.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn squaring_commutes_with_symmetric_permutation(
        a in arb_square(24, 60),
        seed in 0u64..1000,
    ) {
        let p = Perm::random(24, seed);
        let pa = permute_symmetric(&a, &p);
        let left = permute_symmetric(&serial_spgemm(&a, &a), &p);
        let right = serial_spgemm(&pa, &pa);
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn distributed_result_is_strategy_independent(
        a in arb_square(30, 80),
        seed in 0u64..1000,
    ) {
        // run the 1D algorithm under random permutation, undo the
        // permutation, and compare with the unpermuted run
        let expect = serial_spgemm(&a, &a);
        let prep = prepare(&a, 3, PrepStrategy::RandomPerm { seed });
        let u = Universe::new(3);
        let permuted_c = u.run(|comm| {
            let da = DistMat1D::from_global(comm, &prep.a, &prep.offsets);
            let db = da.clone();
            let (c, _) = spgemm_1d(comm, &da, &db, &Plan1D::default());
            c.gather(comm)
        }).remove(0).unwrap();
        let undone = permute_symmetric(&permuted_c, &prep.perm.as_ref().unwrap().inverse());
        prop_assert!(undone.max_abs_diff(&expect) < 1e-9);
    }

    #[test]
    fn partition_layout_roundtrips(parts in proptest::collection::vec(0u32..4, 1..60)) {
        let layout = partition_to_perm(&parts, 4);
        // permutation is a bijection and offsets partition the index space
        let inv = layout.perm.inverse();
        for i in 0..parts.len() {
            prop_assert_eq!(inv.apply(layout.perm.apply(i) as usize) as usize, i);
        }
        prop_assert_eq!(*layout.offsets.last().unwrap(), parts.len());
        // each index lands inside its part's range
        for (v, &part) in parts.iter().enumerate() {
            let pos = layout.perm.apply(v) as usize;
            prop_assert!(pos >= layout.offsets[part as usize]);
            prop_assert!(pos < layout.offsets[part as usize + 1]);
        }
    }
}

#[test]
fn metis_strategy_preserves_squaring_result() {
    let a = sbm(160, 4, 8.0, 1.0, true, 3);
    let expect = serial_spgemm(&a, &a);
    let prep = prepare(
        &a,
        4,
        PrepStrategy::Partition {
            seed: 2,
            epsilon: 0.05,
        },
    );
    let u = Universe::new(4);
    let c = u
        .run(|comm| {
            let da = DistMat1D::from_global(comm, &prep.a, &prep.offsets);
            let db = da.clone();
            let (c, _) = spgemm_1d(comm, &da, &db, &Plan1D::default());
            c.gather(comm)
        })
        .remove(0)
        .unwrap();
    let undone = permute_symmetric(&c, &prep.perm.as_ref().unwrap().inverse());
    assert!(undone.max_abs_diff(&expect) < 1e-9);
}

#[test]
fn partitioned_layout_cuts_volume_on_clustered_input() {
    // end-to-end: SBM + multilevel partitioner + 1D layout ⇒ less fetch
    // volume than uniform layout on the hidden-cluster ordering.
    let a = sbm(400, 8, 10.0, 0.8, true, 5);
    let g = Graph::from_matrix(&a);
    let parts = partition_kway(&g, &PartitionConfig::new(4));
    let layout = partition_to_perm(&parts, 4);
    let clustered = permute_symmetric(&a, &layout.perm);

    let volume = |m: &Csc<f64>, offsets: Vec<usize>| -> u64 {
        let u = Universe::new(4);
        u.run(|comm| {
            let da = DistMat1D::from_global(comm, m, &offsets);
            let db = da.clone();
            let (_c, rep) = spgemm_1d(comm, &da, &db, &Plan1D::default());
            rep.fetched_bytes_global
        })
        .remove(0)
    };
    let v_natural = volume(&a, saspgemm::dist::uniform_offsets(400, 4));
    let v_clustered = volume(&clustered, layout.offsets);
    assert!(
        v_clustered * 2 < v_natural,
        "partitioning should halve volume: {v_clustered} vs {v_natural}"
    );
}
