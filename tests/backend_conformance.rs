//! Backend conformance suite (PR 7): every [`Comm`] backend must be
//! *indistinguishable* from the serial simulator in everything but
//! wall-clock. The suite is backend-parametric — each cell is a
//! [`RankJob`] run twice, once on the pinned `SimComm` baseline and once
//! on the backend `SA_BACKEND` selects — so the same binary proves:
//!
//! * `SA_BACKEND` unset / `sim`: the simulator is deterministic (two
//!   independent runs agree bit-for-bit);
//! * `SA_BACKEND=threads`: the truly-parallel in-process backend conforms;
//! * `SA_BACKEND=procs`: the process-per-rank socket backend conforms —
//!   every result below crosses a real OS-process boundary and comes back
//!   bit-identical, and the metered [`CommStats`] (sends, receives, RDMA
//!   gets — messages *and* bytes, per rank) match the simulator exactly
//!   even though the bytes now travel through TCP frames.
//!
//! Coverage: the 1D sparsity-aware multiply under all four fetch modes
//! (plus its pre-communication analysis), 2D SUMMA across grid shapes and
//! semirings, the 3D split algorithm across layer counts, the stateful
//! `SpgemmSession` fresh-vs-cache split with delta invalidation, the
//! `spgemm_auto` tuner, and a pure-runtime cell that exercises every
//! collective, point-to-point patterns, windows, and splits directly.
//!
//! Outputs are fingerprinted with `f64::to_bits` (integer-valued operands
//! make the sums exact), so equality is exact equality, not tolerance.

use saspgemm::dist::{
    analyze_1d, spgemm_1d, spgemm_auto, spgemm_split_3d_sa, spgemm_summa_2d_sa, uniform_offsets,
    CacheConfig, DistMat1D, DistMat2D, DistMat3D, FetchMode, Plan1D, SpgemmSession,
};
use saspgemm::mpisim::{
    arm_frame_plan, Backend, Comm, CommStats, CostModel, FaultPlan, Grid2D, Grid3D, RankJob,
    Universe, Window,
};
use saspgemm::sparse::gen::erdos_renyi;
use saspgemm::sparse::semiring::MinPlus;
use saspgemm::sparse::Csc;
use std::fmt::Write as _;
use std::time::Duration;

/// ER matrix with small-integer values: f64 sums over products of these
/// are exact, so scheduling cannot perturb results.
fn int_er(nrows: usize, ncols: usize, deg: f64, seed: u64) -> Csc<f64> {
    erdos_renyi(nrows, ncols, deg, seed).map(|v| (v * 7.0).round() + 1.0)
}

/// Bit-exact fingerprint of a sparse matrix: dims + every (row, col,
/// value-bits) triple in storage order.
fn fp_csc(c: &Csc<f64>) -> String {
    let mut s = format!("{}x{}#{}:", c.nrows(), c.ncols(), c.nnz());
    for (i, j, v) in c.iter() {
        write!(s, "{i},{j},{:x};", v.to_bits()).unwrap();
    }
    s
}

fn fp_opt(c: &Option<Csc<f64>>) -> String {
    match c {
        Some(c) => fp_csc(c),
        None => "-".into(),
    }
}

/// The backend under test: whatever `SA_BACKEND` names (the simulator when
/// unset). CI runs this suite once per backend value.
fn backend_under_test() -> Backend {
    Backend::from_env()
}

/// One conformance cell's verdict: a bit-exact output fingerprint plus the
/// rank's full NIC counter delta for the cell.
type Verdict = (String, CommStats);

/// The driver: run `job` on the pinned serial simulator, then on the
/// backend under test, and require per-rank identical fingerprints and
/// byte-identical traffic. Returns the verdicts for extra assertions.
fn run_conformance<J: RankJob<Out = Verdict>>(nranks: usize, job: &J, what: &str) -> Vec<Verdict> {
    // Watchdog on: a conformance bug on a remote backend must fail typed,
    // not hang the suite.
    let u = Universe::new(nranks).with_watchdog(Some(Duration::from_secs(120)));
    let baseline = u.run_backend(Backend::Sim, job);
    let be = backend_under_test();
    let got = u.run_backend(be, job);
    assert_eq!(baseline.len(), got.len(), "{what}: rank count");
    for (rank, (base, g)) in baseline.iter().zip(&got).enumerate() {
        assert_eq!(
            base.0,
            g.0,
            "{what}: rank {rank} output diverged on backend '{}'",
            be.name()
        );
        assert_eq!(
            base.1,
            g.1,
            "{what}: rank {rank} metered traffic diverged on backend '{}'",
            be.name()
        );
    }
    got
}

// ---------------------------------------------------------------------------
// Cells
// ---------------------------------------------------------------------------

/// Pure-runtime cell: every provided collective, p2p rings, windows
/// (plain + ranged), and a split sub-communicator — no algorithm on top,
/// so a conformance failure here localizes to the runtime itself.
struct RuntimeChurn;

impl RankJob for RuntimeChurn {
    type Out = Verdict;
    fn run<C: Comm>(&self, comm: &C) -> Verdict {
        let me = comm.rank();
        let n = comm.size();
        let before = comm.stats();
        let mut s = String::new();

        // p2p ring with payload types of several widths
        comm.send_vec((me + 1) % n, 7, vec![me as u64, 100 + me as u64]);
        let from_left: Vec<u64> = comm.recv_vec((me + n - 1) % n, 7);
        write!(s, "ring:{from_left:?};").unwrap();
        comm.send_vec(
            (me + 1) % n,
            8,
            vec![(me as u32, me as u32, me as f64 + 0.5)],
        );
        let tup: Vec<(u32, u32, f64)> = comm.recv_vec((me + n - 1) % n, 8);
        write!(s, "tup:{}:{};", tup[0].0, tup[0].2.to_bits()).unwrap();

        // every provided collective
        let b = comm.bcast_vec(0, (me == 0).then(|| vec![3u64, 1, 4, 1, 5]));
        let g = comm.gatherv(0, vec![me as u64; me + 1]);
        let sc = comm.scatterv(
            0,
            (me == 0).then(|| (0..n).map(|r| vec![r as u64 * 10]).collect()),
        );
        let ag = comm.allgatherv(vec![me as u64 * 2]);
        let a2a = comm.alltoallv((0..n).map(|d| vec![(me * 100 + d) as u64]).collect());
        let red = comm.reduce(0, me as u64 + 1, |x, y| x + y);
        let ar = comm.allreduce(me as u64 + 1, |x, y| x + y);
        let arv = comm.allreduce_vec(vec![me as f64, 1.0], |x, y| x + y);
        let ex = comm.exscan_sum(me as u64 + 1);
        write!(
            s,
            "coll:{b:?}|{g:?}|{sc:?}|{ag:?}|{a2a:?}|{red:?}|{ar}|{:?}|{ex:?};",
            arv.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        )
        .unwrap();
        comm.barrier();

        // windows: whole-slice and ranged one-sided gets
        let win = Window::create(comm, vec![me as u64; 6]);
        let peer = (me + n / 2) % n;
        let got = win.get(comm, peer, 1..4);
        write!(s, "win:{got:?};").unwrap();
        comm.barrier();

        // split into even/odd and reduce within
        let sub = comm.split(me % 2, me);
        let sub_sum = sub.allreduce(me as u64, |x, y| x + y);
        write!(s, "split:{}/{}:{sub_sum};", sub.rank(), sub.size()).unwrap();
        comm.barrier();

        (s, comm.stats() - before)
    }
}

#[test]
fn runtime_churn_conforms() {
    for n in [2, 4, 5] {
        run_conformance(n, &RuntimeChurn, &format!("runtime churn p={n}"));
    }
}

/// The 1D sparsity-aware multiply under one fetch mode, plus its
/// pre-communication analysis — the analysis must price exactly what the
/// execution meters, on every backend.
struct Spgemm1D<'a> {
    a: &'a Csc<f64>,
    mode: FetchMode,
}

impl RankJob for Spgemm1D<'_> {
    type Out = Verdict;
    fn run<C: Comm>(&self, comm: &C) -> Verdict {
        let offsets = uniform_offsets(self.a.ncols(), comm.size());
        let da = DistMat1D::from_global(comm, self.a, &offsets);
        let db = da.clone();
        let an = analyze_1d(comm, &da, &db, self.mode);
        let plan = Plan1D {
            fetch_mode: self.mode,
            ..Default::default()
        };
        let before = comm.stats();
        let (c, rep) = spgemm_1d(comm, &da, &db, &plan);
        let traffic = comm.stats() - before;
        assert_eq!(
            rep.fetched_bytes, an.planned_fetch_bytes,
            "plan == metering"
        );
        let s = format!(
            "{}|fetched={} msgs={} needed={} global={} cv={:x}|planned={}/{}",
            fp_csc(&c.into_local_csc()),
            rep.fetched_bytes,
            rep.rdma_msgs,
            rep.needed_bytes,
            rep.fetched_bytes_global,
            rep.cv_over_mem.to_bits(),
            an.planned_fetch_bytes,
            an.planned_intervals,
        );
        (s, traffic)
    }
}

#[test]
fn spgemm_1d_conforms_across_fetch_modes() {
    let a = int_er(48, 48, 4.0, 11);
    for mode in [
        FetchMode::FullMatrix,
        FetchMode::Block(4),
        FetchMode::ContiguousRuns,
        FetchMode::ColumnExact,
    ] {
        run_conformance(4, &Spgemm1D { a: &a, mode }, &format!("1D {mode:?}"));
    }
}

/// 2D SUMMA on one grid shape, arithmetic or tropical semiring.
struct Summa2D<'a> {
    a: &'a Csc<f64>,
    b: &'a Csc<f64>,
    pr: usize,
    pc: usize,
    mode: FetchMode,
    tropical: bool,
}

impl RankJob for Summa2D<'_> {
    type Out = Verdict;
    fn run<C: Comm>(&self, comm: &C) -> Verdict {
        let grid = Grid2D::new(comm, self.pr, self.pc);
        let da = DistMat2D::from_global(&grid, self.a);
        let db = DistMat2D::from_global(&grid, self.b);
        let before = comm.stats();
        let s = if self.tropical {
            let ws = saspgemm::sparse::SpgemmWorkspace::new();
            let (c, _rep) = saspgemm::dist::spgemm_summa_2d_sa_ws::<_, MinPlus>(
                comm, &grid, &da, &db, self.mode, &ws,
            );
            fp_opt(&c.gather(comm, &grid))
        } else {
            let (c, rep) = spgemm_summa_2d_sa(comm, &grid, &da, &db, self.mode);
            format!(
                "{}|af={} am={} bs={}",
                fp_opt(&c.gather(comm, &grid)),
                rep.a_fetched_bytes,
                rep.a_rdma_msgs,
                rep.b_shipped_bytes,
            )
        };
        (s, comm.stats() - before)
    }
}

#[test]
fn summa_2d_conforms_across_grids_and_semirings() {
    let a = int_er(40, 40, 3.5, 21);
    let b = int_er(40, 40, 2.5, 22);
    for (pr, pc) in [(2, 2), (1, 4), (4, 1)] {
        for mode in [FetchMode::Block(4), FetchMode::ColumnExact] {
            for tropical in [false, true] {
                let job = Summa2D {
                    a: &a,
                    b: &b,
                    pr,
                    pc,
                    mode,
                    tropical,
                };
                let what = format!("2D {pr}x{pc} {mode:?} tropical={tropical}");
                run_conformance(pr * pc, &job, &what);
            }
        }
    }
}

/// The 3D split algorithm on one layer configuration.
struct Split3D<'a> {
    a: &'a Csc<f64>,
    b: &'a Csc<f64>,
    q: usize,
    layers: usize,
}

impl RankJob for Split3D<'_> {
    type Out = Verdict;
    fn run<C: Comm>(&self, comm: &C) -> Verdict {
        let grid = Grid3D::new(comm, self.q, self.layers);
        let da = DistMat3D::from_global_split_cols(&grid, self.a);
        let db = DistMat3D::from_global_split_rows(&grid, self.b);
        let before = comm.stats();
        let (c, rep) = spgemm_split_3d_sa(comm, &grid, &da, &db, FetchMode::Block(4));
        let s = format!(
            "{}|af={} rb={} bs={}",
            fp_opt(&c.gather(comm)),
            rep.summa.a_fetched_bytes,
            rep.reduce_bytes,
            rep.summa.b_shipped_bytes,
        );
        (s, comm.stats() - before)
    }
}

#[test]
fn split_3d_conforms_across_layer_counts() {
    let a = int_er(36, 36, 3.0, 31);
    let b = int_er(36, 36, 3.0, 32);
    for (q, layers) in [(2, 1), (2, 2), (1, 4)] {
        let job = Split3D {
            a: &a,
            b: &b,
            q,
            layers,
        };
        run_conformance(q * q * layers, &job, &format!("3D q={q} l={layers}"));
    }
}

/// The stateful session path: fresh vs cache-hit byte split across
/// repeated multiplies and an `update_a` delta invalidation.
struct SessionCell<'a> {
    a: &'a Csc<f64>,
}

impl RankJob for SessionCell<'_> {
    type Out = Verdict;
    fn run<C: Comm>(&self, comm: &C) -> Verdict {
        let before = comm.stats();
        let offsets = uniform_offsets(self.a.ncols(), comm.size());
        let da = DistMat1D::from_global(comm, self.a, &offsets);
        let db = da.clone();
        let mut session = SpgemmSession::create(
            comm,
            da.clone(),
            Plan1D::default(),
            CacheConfig::unlimited(),
        );
        let (c1, r1) = session.multiply(comm, &db);
        let (c2, r2) = session.multiply(comm, &db);
        let a2 = self.a.map(|v| v + 1.0);
        let da2 = DistMat1D::from_global(comm, &a2, &offsets);
        let invalidated = session.update_a(comm, da2);
        let (c3, r3) = session.multiply(comm, &db);
        let s = format!(
            "{}|{}|{}|r1={}/{}/{} r2={}/{} r3={}/{} inv={invalidated}",
            fp_csc(&c1.into_local_csc()),
            fp_csc(&c2.into_local_csc()),
            fp_csc(&c3.into_local_csc()),
            r1.fresh_bytes,
            r1.cache_hit_bytes,
            r1.needed_bytes,
            r2.fresh_bytes,
            r2.cache_hit_bytes,
            r3.fresh_bytes,
            r3.cache_hit_bytes,
        );
        (s, comm.stats() - before)
    }
}

#[test]
fn session_cache_conforms() {
    let a = int_er(60, 60, 3.0, 41);
    run_conformance(4, &SessionCell { a: &a }, "session fresh-vs-cache");
}

/// The autotuner: same pick, same traffic, same product on every backend.
struct AutoCell<'a> {
    a: &'a Csc<f64>,
    b: &'a Csc<f64>,
}

impl RankJob for AutoCell<'_> {
    type Out = Verdict;
    fn run<C: Comm>(&self, comm: &C) -> Verdict {
        let before = comm.stats();
        let (c, rep) = spgemm_auto(comm, self.a, self.b, &CostModel::slingshot());
        let s = format!("{}|choice={:?}|{:?}", fp_opt(&c), rep.choice, rep.comm);
        (s, comm.stats() - before)
    }
}

#[test]
fn autotuner_conforms() {
    let a = int_er(48, 48, 3.0, 51);
    let b = int_er(48, 48, 3.0, 52);
    let got = run_conformance(4, &AutoCell { a: &a, b: &b }, "spgemm_auto");
    assert!(got[0].0.starts_with("48x48"), "rank 0 gathers the product");
}

// ---------------------------------------------------------------------------
// Backend-specific regression nets (pinned backends — these intentionally
// do NOT follow SA_BACKEND; they guard properties of one backend each).
// ---------------------------------------------------------------------------

#[test]
fn threads_backend_concurrency_smoke() {
    // Repeated runs of barrier/window/split/collective churn on the
    // parallel in-process backend: must terminate every time with correct
    // results. This is the deadlock/lost-wakeup regression net for the
    // lightweight barrier and the scheduler-aware mailbox waits.
    let u = Universe::new(8);
    for round in 0..20u64 {
        let got = u.launch::<saspgemm::mpisim::Threads, _, _>(|comm| {
            let me = comm.rank() as u64;
            for _ in 0..2 {
                let win = Window::create(comm, vec![me + round; 8]);
                let peer = (comm.rank() + 3) % comm.size();
                let v = win.get(comm, peer, 2..6);
                assert_eq!(v, vec![peer as u64 + round; 4]);
                comm.barrier();
            }
            let sub = comm.split(comm.rank() % 2, comm.rank());
            let sub_sum = sub.allreduce(me, |x, y| x + y);
            let sends: Vec<Vec<u64>> = (0..comm.size())
                .map(|d| vec![me * 100 + d as u64])
                .collect();
            let recvd = comm.alltoallv(sends);
            comm.barrier();
            (sub_sum, recvd.len())
        });
        for (r, (sub_sum, n)) in got.iter().enumerate() {
            let expect: u64 = if r % 2 == 0 { 2 + 4 + 6 } else { 1 + 3 + 5 + 7 };
            assert_eq!(*sub_sum, expect, "round {round} rank {r}");
            assert_eq!(*n, 8);
        }
    }
}

#[test]
fn procs_backend_conforms_under_seeded_frame_loss() {
    // Hostile-network regression net (PR 9), pinned to the procs backend:
    // with a seeded lossy plan armed — 5% of droppable frames dropped,
    // CRC-corrupted, or duplicated — the pure-runtime churn cell must still
    // conform bit-for-bit against the serial baseline. The per-frame
    // ack/retransmit layer absorbs every injected fault; nothing above the
    // transport may be able to tell the link was hostile.
    let u = Universe::new(4).with_watchdog(Some(Duration::from_secs(120)));
    let baseline = u.run_backend(Backend::Sim, &RuntimeChurn);
    for (what, plan) in [
        ("drop", FaultPlan::seeded_lossy(7, 50, 0, 0)),
        ("corrupt", FaultPlan::seeded_lossy(7, 0, 50, 0)),
        ("duplicate", FaultPlan::seeded_lossy(7, 0, 0, 50)),
    ] {
        let _armed = arm_frame_plan(&plan);
        let got = u.run_backend(Backend::Procs, &RuntimeChurn);
        assert_eq!(baseline.len(), got.len(), "lossy({what}): rank count");
        for (rank, (base, g)) in baseline.iter().zip(&got).enumerate() {
            assert_eq!(
                base, g,
                "lossy({what}): rank {rank} diverged under seeded frame loss"
            );
        }
    }
}

#[test]
fn serial_backend_is_deterministic_across_runs() {
    // Two identical pinned-SimComm runs must produce identical traffic
    // *and* identical per-rank results — the property that makes the
    // simulator the byte-exact baseline every conformance cell diffs
    // against.
    let a = int_er(44, 44, 3.0, 61);
    let job = |u: &Universe| {
        u.launch::<saspgemm::mpisim::Serial, _, _>(|comm| {
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let db = da.clone();
            let (c, rep) = spgemm_1d(comm, &da, &db, &Plan1D::default());
            (
                c.into_local_csc(),
                rep.fetched_bytes,
                rep.rdma_msgs,
                comm.stats(),
            )
        })
    };
    let u = Universe::new(5);
    assert_eq!(job(&u), job(&u));
}
