//! Wire-format property tests (PR 7): the `procs` backend's framing must
//! be total — every frame kind and every value type round-trips exactly,
//! and *no* input bytes (truncated, bit-flipped, or random) can make the
//! decoder panic or allocate unboundedly. A hostile or half-written socket
//! must surface as a typed [`WireError`], never as a crash inside the
//! progress engine.

use proptest::prelude::*;
use saspgemm::mpisim::{crc32, CommError, CommStats, Frame, Primitive, RankError, Wire, WireError};
use std::time::Duration;

/// One instance of every frame kind, parameterized by the generated
/// inputs so the property sweeps the full wire surface each case.
fn build_frames(a: u64, b: u64, port: u16, bytes: &[u8], flag: bool) -> Vec<Frame> {
    vec![
        Frame::Hello {
            rank: a % 1024,
            port,
        },
        Frame::Table {
            ports: vec![port, port ^ 1, 9],
        },
        Frame::Peer { rank: b % 1024 },
        Frame::Data {
            comm_id: a,
            src: b % 64,
            tag: b,
            metered: flag,
            meter_bytes: a % 4096,
            type_fp: a ^ b,
            count: bytes.len() as u64,
            payload: bytes.to_vec(),
        },
        Frame::GetReq {
            req_id: a,
            win_id: b,
            part: (a % 7) as u32,
            start: b % 100,
            end: b % 100 + a % 50,
        },
        Frame::GetResp {
            req_id: a,
            payload: bytes.to_vec(),
        },
        Frame::Abort { victim: a % 64 },
        Frame::Bye,
        Frame::Outcome {
            payload: bytes.to_vec(),
        },
        Frame::Heartbeat,
        Frame::Reliable {
            seq: a ^ b,
            inner: (Frame::Data {
                comm_id: a,
                src: b % 64,
                tag: b,
                metered: flag,
                meter_bytes: a % 4096,
                type_fp: a ^ b,
                count: bytes.len() as u64,
                payload: bytes.to_vec(),
            })
            .to_bytes(),
        },
        Frame::Ack { seq: b },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_frame_kind_round_trips_with_valid_checksum(
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        port in 0u64..65536,
        bytes in proptest::collection::vec(0u8..=255u8, 0..48),
        flag in 0u8..2,
    ) {
        for f in build_frames(a, b, port as u16, &bytes, flag == 1) {
            let enc = f.to_bytes();
            let back = Frame::from_bytes(&enc);
            prop_assert_eq!(back.as_ref().ok(), Some(&f));
            // the trailing 4 bytes are the CRC32 of everything before them
            let (body, crc) = enc.split_at(enc.len() - 4);
            prop_assert_eq!(u32::from_le_bytes(crc.try_into().unwrap()), crc32(body));
        }
    }

    #[test]
    fn every_truncation_of_every_frame_is_a_typed_error(
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        port in 0u64..65536,
        bytes in proptest::collection::vec(0u8..=255u8, 0..24),
        flag in 0u8..2,
    ) {
        for f in build_frames(a, b, port as u16, &bytes, flag == 1) {
            let enc = f.to_bytes();
            for cut in 0..enc.len() {
                // every strict prefix must decode to Err, never panic and
                // never succeed (no frame encoding is a prefix of another)
                prop_assert!(
                    Frame::from_bytes(&enc[..cut]).is_err(),
                    "prefix {cut}/{} of {f:?} decoded",
                    enc.len()
                );
            }
        }
    }

    #[test]
    fn bit_flipped_frames_are_always_typed_corrupt(
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        port in 0u64..65536,
        bytes in proptest::collection::vec(0u8..=255u8, 0..24),
        pos in 0usize..4096,
        xor in 1u8..=255,
    ) {
        for f in build_frames(a, b, port as u16, &bytes, true) {
            let mut enc = f.to_bytes();
            let i = pos % enc.len();
            enc[i] ^= xor;
            // any nonzero single-byte damage — header, payload, or the CRC
            // suffix itself — must surface as Corrupt: never a panic, never
            // a successful decode, never any other error shape
            match Frame::from_bytes(&enc) {
                Err(WireError::Corrupt { expected, got }) => prop_assert_ne!(expected, got),
                other => prop_assert!(
                    false,
                    "byte {} ^ {:#04x} of {:?}: expected Corrupt, got {:?}",
                    i, xor, f, other
                ),
            }
        }
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(
        bytes in proptest::collection::vec(0u8..=255u8, 0..64),
    ) {
        let _ = Frame::from_bytes(&bytes);
        let mut buf = bytes.as_slice();
        let _ = <Vec<u64> as Wire>::get(&mut buf);
        let mut buf = bytes.as_slice();
        let _ = String::get(&mut buf);
        let mut buf = bytes.as_slice();
        let _ = <Result<Vec<f64>, RankError> as Wire>::get(&mut buf);
    }

    #[test]
    fn hostile_length_claims_fail_fast_without_allocating(
        kind in 2u8..8, // length-carrying kinds (7 stands in for 11 = Reliable)
        len in 0u64..u64::MAX,
    ) {
        // [kind][huge length]... with no matching body: must be a typed
        // error, and must not try to reserve `len` elements first. The
        // checksum is made valid so the decode *reaches* the length guard
        // instead of bouncing off the CRC check.
        let kind = if kind == 7 { 11 } else { kind };
        let mut enc = vec![kind];
        len.put(&mut enc);
        enc.extend_from_slice(&[0; 16]);
        let crc = crc32(&enc);
        enc.extend_from_slice(&crc.to_le_bytes());
        prop_assert!(Frame::from_bytes(&enc).is_err());
    }

    #[test]
    fn value_types_round_trip_bit_exact(
        v in proptest::collection::vec((0u64..u64::MAX, -1e300f64..1e300), 0..16),
        s in proptest::collection::vec(0u32..0x10FFFF, 0..12),
        secs in 0u64..u64::MAX,
        nanos in 0u64..1_000_000_000,
    ) {
        let ints: Vec<u64> = v.iter().map(|(i, _)| *i).collect();
        let floats: Vec<f64> = v.iter().map(|(_, f)| *f).collect();
        prop_assert_eq!(<Vec<u64> as Wire>::from_bytes(&ints.to_bytes()).unwrap(), ints);
        // floats round-trip through to_bits, so -0.0 and every payload
        // travel exactly
        let back = <Vec<f64> as Wire>::from_bytes(&floats.to_bytes()).unwrap();
        prop_assert_eq!(
            back.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            floats.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
        let string: String = s.iter().filter_map(|&c| char::from_u32(c)).collect();
        prop_assert_eq!(String::from_bytes(&string.to_bytes()).unwrap(), string);
        let d = Duration::new(secs, nanos as u32);
        prop_assert_eq!(Duration::from_bytes(&d.to_bytes()).unwrap(), d);
        let stats = CommStats {
            sent_msgs: secs,
            sent_bytes: nanos,
            recv_msgs: secs ^ nanos,
            recv_bytes: secs.wrapping_mul(3),
            rdma_gets: nanos / 7,
            rdma_get_bytes: secs.rotate_left(13),
        };
        prop_assert_eq!(CommStats::from_bytes(&stats.to_bytes()).unwrap(), stats);
    }

    #[test]
    fn error_types_round_trip_through_outcome_frames(
        rank in 0usize..4096,
        secs in 0u64..1_000_000,
    ) {
        for prim in [Primitive::Recv, Primitive::Barrier, Primitive::Exchange] {
            for err in [
                CommError::PeerFailed { rank, primitive: prim },
                CommError::Timeout { primitive: prim, waited: Duration::from_secs(secs) },
                CommError::Poisoned,
            ] {
                let outcome: Result<Vec<u64>, RankError> =
                    Err(RankError::Comm(err.clone()));
                // the exact path a failed rank's result takes to the parent
                let frame = Frame::Outcome { payload: outcome.to_bytes() };
                let enc = frame.to_bytes();
                let Ok(Frame::Outcome { payload }) = Frame::from_bytes(&enc) else {
                    return Err("outcome frame did not round trip".into());
                };
                let back = <Result<Vec<u64>, RankError> as Wire>::from_bytes(&payload).unwrap();
                prop_assert_eq!(back, outcome);
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected(
        a in 0u64..u64::MAX,
        junk in 1usize..8,
    ) {
        // junk appended after the CRC suffix: the stored checksum no longer
        // covers the tail, so this now surfaces as Corrupt
        let mut enc = (Frame::Abort { victim: a }).to_bytes();
        enc.extend(std::iter::repeat_n(0xAB, junk));
        match Frame::from_bytes(&enc) {
            Err(WireError::Corrupt { .. }) => {}
            other => return Err(format!("expected Corrupt, got {other:?}")),
        }
        // junk smuggled *inside* the checksummed region (CRC recomputed to
        // match): passes integrity, still rejected as Malformed
        let mut enc = (Frame::Abort { victim: a }).to_bytes();
        enc.truncate(enc.len() - 4);
        enc.extend(std::iter::repeat_n(0xAB, junk));
        let crc = crc32(&enc);
        enc.extend_from_slice(&crc.to_le_bytes());
        match Frame::from_bytes(&enc) {
            Err(WireError::Malformed { .. }) => {}
            other => return Err(format!("expected Malformed, got {other:?}")),
        }
    }
}
