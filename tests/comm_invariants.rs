//! Integration tests of the communication-volume claims the paper's
//! analysis rests on: the sparsity-aware algorithm's traffic is bounded by
//! the oblivious baseline's, the pre-communication analysis is exact, and
//! structure translates into volume.

use saspgemm::dist::{analyze_1d, spgemm_1d, uniform_offsets, DistMat1D, FetchMode, Plan1D};
use saspgemm::mpisim::Universe;
use saspgemm::sparse::gen::{banded, erdos_renyi, sbm};
use saspgemm::sparse::Csc;

fn reports_for(a: &Csc<f64>, p: usize, mode: FetchMode) -> Vec<saspgemm::dist::SpgemmReport> {
    let u = Universe::new(p);
    u.run(|comm| {
        let da = DistMat1D::from_global(comm, a, &uniform_offsets(a.ncols(), p));
        let db = da.clone();
        let plan = Plan1D {
            fetch_mode: mode,
            ..Default::default()
        };
        let (_c, rep) = spgemm_1d(comm, &da, &db, &plan);
        rep
    })
}

#[test]
fn sparsity_aware_never_exceeds_full_fetch() {
    for seed in [1u64, 2, 3] {
        let a = erdos_renyi(200, 200, 4.0, seed);
        let aware = reports_for(&a, 4, FetchMode::Block(32));
        let oblivious = reports_for(&a, 4, FetchMode::FullMatrix);
        for (x, y) in aware.iter().zip(&oblivious) {
            assert!(x.fetched_bytes <= y.fetched_bytes, "seed {seed}");
        }
    }
}

#[test]
fn exact_mode_is_byte_minimal() {
    let a = sbm(300, 6, 8.0, 1.0, true, 4);
    let exact = reports_for(&a, 4, FetchMode::ColumnExact);
    for k in [4usize, 32, 512] {
        let block = reports_for(&a, 4, FetchMode::Block(k));
        for (e, b) in exact.iter().zip(&block) {
            assert!(e.fetched_bytes <= b.fetched_bytes, "K={k}");
            assert_eq!(e.fetched_bytes, e.needed_bytes, "exact fetches only needs");
        }
    }
}

#[test]
fn block_mode_bounds_messages_per_remote_rank() {
    let a = erdos_renyi(300, 300, 6.0, 5);
    let p = 5;
    for k in [4usize, 16] {
        let reps = reports_for(&a, p, FetchMode::Block(k));
        for r in &reps {
            // 2 windows x K intervals x (P-1) remote ranks
            assert!(
                r.rdma_msgs <= (2 * k * (p - 1)) as u64,
                "K={k}: {} msgs",
                r.rdma_msgs
            );
        }
    }
}

#[test]
fn metered_traffic_equals_planned_traffic() {
    let a = banded(300, 12, 0.5, false, 6);
    let reps = reports_for(&a, 4, FetchMode::Block(16));
    for r in &reps {
        assert_eq!(r.comm.rdma_get_bytes, r.fetched_bytes);
        assert_eq!(r.comm.rdma_gets, r.rdma_msgs);
    }
}

#[test]
fn analysis_predicts_execution_exactly() {
    let a = sbm(250, 5, 7.0, 1.5, true, 7);
    let u = Universe::new(5);
    let pairs = u.run(|comm| {
        let da = DistMat1D::from_global(comm, &a, &uniform_offsets(a.ncols(), 5));
        let db = da.clone();
        let pre = analyze_1d(comm, &da, &db, FetchMode::Block(8));
        let (_c, rep) = spgemm_1d(
            comm,
            &da,
            &db,
            &Plan1D {
                fetch_mode: FetchMode::Block(8),
                ..Default::default()
            },
        );
        (pre, rep)
    });
    for (pre, rep) in pairs {
        assert_eq!(pre.planned_fetch_bytes, rep.fetched_bytes);
        assert_eq!(pre.planned_intervals * 2, rep.rdma_msgs);
        assert!((pre.cv_over_mem - rep.cv_over_mem).abs() < 1e-12);
    }
}

#[test]
fn structure_reduces_volume_banded_vs_random_positions() {
    // same nnz budget, banded vs uniform placement: banded must fetch far less
    let n = 400;
    let banded_m = banded(n, 8, 0.5, false, 8);
    let er = erdos_renyi(n, n, banded_m.nnz() as f64 / n as f64, 9);
    let vb: u64 = reports_for(&banded_m, 4, FetchMode::ColumnExact)[0].fetched_bytes_global;
    let ve: u64 = reports_for(&er, 4, FetchMode::ColumnExact)[0].fetched_bytes_global;
    assert!(
        vb * 3 < ve,
        "banded volume {vb} should be well under ER volume {ve}"
    );
}

#[test]
fn self_contained_slices_communicate_nothing() {
    // block-diagonal matrix aligned with the rank boundaries: zero fetches
    let p = 4;
    let n = 80;
    let mut coo = saspgemm::sparse::Coo::new(n, n);
    for b in 0..p {
        let lo = b * (n / p);
        for i in 0..(n / p) as u32 {
            for j in 0..(n / p) as u32 {
                if (i + 2 * j) % 3 == 0 {
                    coo.push(lo as u32 + i, lo as u32 + j, 1.0);
                }
            }
        }
    }
    let a = coo.to_csc_with(|x, _| x);
    let reps = reports_for(&a, p, FetchMode::Block(16));
    for r in &reps {
        assert_eq!(r.fetched_bytes, 0);
        assert_eq!(r.rdma_msgs, 0);
        assert_eq!(r.cv_over_mem, 0.0);
    }
}

#[test]
fn window_errors_are_reported_not_panics() {
    use saspgemm::mpisim::{Window, WindowError};
    let u = Universe::new(2);
    let errs = u.run(|comm| {
        let win = Window::create(comm, vec![1u64; 8]);
        let mut out = Vec::new();
        let oob = win.get_into(comm, 0, 4..20, &mut out).err();
        let bad = win.get_into(comm, 5, 0..1, &mut out).err();
        (oob, bad)
    });
    for (oob, bad) in errs {
        assert!(matches!(oob, Some(WindowError::OutOfRange { .. })));
        assert!(matches!(bad, Some(WindowError::BadRank { .. })));
    }
}
