//! Backend-equivalence suite (PR 5 acceptance): the serial simulator
//! (`SimComm`, `Universe::run`) and the truly-parallel threads backend
//! (`ThreadComm`, `Universe::run_threads`) must be *indistinguishable* in
//! everything but wall-clock —
//!
//! * bit-identical outputs across 1D / 2D / 3D sparsity-aware multiplies ×
//!   fetch modes × semirings (integer-valued operands make f64 accumulation
//!   exact, so equality is `==`);
//! * byte-identical metered traffic, asserted **per rank** through the full
//!   [`CommStats`] counters (sends, receives, RDMA gets — messages and
//!   bytes) plus each algorithm's own report fields;
//! * the same holds through the stateful paths: `SpgemmSession` multiplies
//!   (fresh vs cache-hit split), `update_a` delta invalidation, and the
//!   `spgemm_auto` tuner (same pick, same traffic, same product);
//! * plus a concurrency smoke for the threads backend: repeated runs of
//!   barrier/window/split/collective churn must terminate (no deadlock,
//!   no lost wakeup) with correct results every time.

use saspgemm::dist::{
    analyze_1d, spgemm_1d, spgemm_auto, spgemm_split_3d_sa, spgemm_summa_2d_sa, uniform_offsets,
    CacheConfig, DistMat1D, DistMat2D, DistMat3D, FetchMode, Plan1D, SpgemmSession,
};
use saspgemm::mpisim::{CommStats, CostModel, Grid2D, Grid3D, Universe, Window};
use saspgemm::sparse::gen::erdos_renyi;
use saspgemm::sparse::semiring::MinPlus;
use saspgemm::sparse::Csc;

/// Run the same closure literal on both backends and assert the per-rank
/// results are identical. The closure is expanded twice so each copy
/// infers its own communicator type; it must therefore be written against
/// the `Comm` trait surface only.
macro_rules! assert_backends_agree {
    ($u:expr, $f:expr) => {{
        // launch::<M> pins each leg's scheduler: unlike `run`, it ignores
        // the SA_BACKEND escape hatch, so this comparison can never
        // silently degrade to threads-vs-threads.
        let sim = $u.launch::<saspgemm::mpisim::Serial, _, _>($f);
        let thr = $u.launch::<saspgemm::mpisim::Threads, _, _>($f);
        assert_eq!(sim, thr, "backends diverged (per-rank comparison)");
        sim
    }};
}

/// ER matrix with small-integer values: f64 sums over products of these
/// are exact, so scheduling cannot perturb results.
fn int_er(nrows: usize, ncols: usize, deg: f64, seed: u64) -> Csc<f64> {
    erdos_renyi(nrows, ncols, deg, seed).map(|v| (v * 7.0).round() + 1.0)
}

const MODES: [FetchMode; 4] = [
    FetchMode::FullMatrix,
    FetchMode::Block(4),
    FetchMode::ContiguousRuns,
    FetchMode::ColumnExact,
];

/// The metered-traffic signature of one rank's multiply: the full NIC
/// counter delta plus the report's own accounting.
type Traffic = (CommStats, u64, u64, u64);

#[test]
fn spgemm_1d_identical_outputs_and_traffic_per_rank() {
    let a = int_er(48, 48, 4.0, 11);
    for mode in MODES {
        let u = Universe::new(4);
        let got = assert_backends_agree!(u, |comm| {
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let db = da.clone();
            let plan = Plan1D {
                fetch_mode: mode,
                ..Default::default()
            };
            let before = comm.stats();
            let (c, rep) = spgemm_1d(comm, &da, &db, &plan);
            let traffic: Traffic = (
                comm.stats() - before,
                rep.fetched_bytes,
                rep.rdma_msgs,
                rep.needed_bytes,
            );
            (c.into_local_csc(), traffic)
        });
        // and the pre-communication analysis prices both backends alike
        let analyses = assert_backends_agree!(u, |comm| {
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let an = analyze_1d(comm, &da, &da.clone(), mode);
            (
                an.planned_fetch_bytes,
                an.planned_intervals,
                an.needed_bytes,
            )
        });
        for ((_, (_, fetched, _, _)), (planned, _, _)) in got.iter().zip(&analyses) {
            assert_eq!(
                fetched, planned,
                "{mode:?}: plan == metering on both backends"
            );
        }
    }
}

#[test]
fn summa_2d_sa_identical_across_grids_modes_semirings() {
    let a = int_er(40, 40, 3.5, 21);
    let b = int_er(40, 40, 2.5, 22);
    for (pr, pc) in [(2, 2), (1, 4), (4, 1)] {
        for mode in [FetchMode::Block(4), FetchMode::ColumnExact] {
            let u = Universe::new(pr * pc);
            // arithmetic semiring
            assert_backends_agree!(u, |comm| {
                let grid = Grid2D::new(comm, pr, pc);
                let da = DistMat2D::from_global(&grid, &a);
                let db = DistMat2D::from_global(&grid, &b);
                let before = comm.stats();
                let (c, rep) = spgemm_summa_2d_sa(comm, &grid, &da, &db, mode);
                let traffic: Traffic = (
                    comm.stats() - before,
                    rep.a_fetched_bytes,
                    rep.a_rdma_msgs,
                    rep.b_shipped_bytes,
                );
                (c.gather(comm, &grid), traffic)
            });
            // tropical semiring (shortest-path products)
            assert_backends_agree!(u, |comm| {
                let grid = Grid2D::new(comm, pr, pc);
                let da = DistMat2D::from_global(&grid, &a);
                let db = DistMat2D::from_global(&grid, &b);
                let ws = saspgemm::sparse::SpgemmWorkspace::new();
                let before = comm.stats();
                let (c, _rep) = saspgemm::dist::spgemm_summa_2d_sa_ws::<_, MinPlus>(
                    comm, &grid, &da, &db, mode, &ws,
                );
                (c.gather(comm, &grid), comm.stats() - before)
            });
        }
    }
}

#[test]
fn split_3d_sa_identical_across_layer_counts() {
    let a = int_er(36, 36, 3.0, 31);
    let b = int_er(36, 36, 3.0, 32);
    for (q, layers) in [(2, 1), (2, 2), (1, 4)] {
        let u = Universe::new(q * q * layers);
        assert_backends_agree!(u, |comm| {
            let grid = Grid3D::new(comm, q, layers);
            let da = DistMat3D::from_global_split_cols(&grid, &a);
            let db = DistMat3D::from_global_split_rows(&grid, &b);
            let before = comm.stats();
            let (c, rep) = spgemm_split_3d_sa(comm, &grid, &da, &db, FetchMode::Block(4));
            let traffic: Traffic = (
                comm.stats() - before,
                rep.summa.a_fetched_bytes,
                rep.reduce_bytes,
                rep.summa.b_shipped_bytes,
            );
            (c.gather(comm), traffic)
        });
    }
}

#[test]
fn session_cache_behaves_identically_across_backends() {
    let a = int_er(60, 60, 3.0, 41);
    let u = Universe::new(4);
    assert_backends_agree!(u, |comm| {
        let offsets = uniform_offsets(a.ncols(), comm.size());
        let da = DistMat1D::from_global(comm, &a, &offsets);
        let db = da.clone();
        let mut session = SpgemmSession::create(
            comm,
            da.clone(),
            Plan1D::default(),
            CacheConfig::unlimited(),
        );
        let (c1, r1) = session.multiply(comm, &db);
        let (c2, r2) = session.multiply(comm, &db);
        // converge the operand: session invalidates only the delta
        let a2 = a.map(|v| v + 1.0);
        let da2 = DistMat1D::from_global(comm, &a2, &offsets);
        let invalidated = session.update_a(comm, da2);
        let (c3, r3) = session.multiply(comm, &db);
        (
            c1.into_local_csc(),
            c2.into_local_csc(),
            c3.into_local_csc(),
            (r1.fresh_bytes, r1.cache_hit_bytes, r1.needed_bytes),
            (r2.fresh_bytes, r2.cache_hit_bytes),
            (r3.fresh_bytes, r3.cache_hit_bytes),
            invalidated,
            comm.stats(),
        )
    });
}

#[test]
fn autotuner_picks_and_runs_identically_across_backends() {
    let a = int_er(48, 48, 3.0, 51);
    let b = int_er(48, 48, 3.0, 52);
    let u = Universe::new(4);
    let got = assert_backends_agree!(u, |comm| {
        let (c, rep) = spgemm_auto(comm, &a, &b, &CostModel::slingshot());
        (c, format!("{:?}", rep.choice), rep.comm)
    });
    assert!(got[0].0.is_some(), "rank 0 gathers the product");
}

#[test]
fn threads_backend_concurrency_smoke() {
    // Repeated runs of barrier/window/split/collective churn on the
    // parallel backend: must terminate every time with correct results.
    // This is the deadlock/lost-wakeup regression net for the lightweight
    // barrier and the scheduler-aware mailbox waits.
    let u = Universe::new(8);
    for round in 0..20u64 {
        let got = u.run_threads(|comm| {
            let me = comm.rank() as u64;
            // window churn: expose, cross-read, drop — twice
            for _ in 0..2 {
                let win = Window::create(comm, vec![me + round; 8]);
                let peer = (comm.rank() + 3) % comm.size();
                let v = win.get(comm, peer, 2..6);
                assert_eq!(v, vec![peer as u64 + round; 4]);
                comm.barrier();
            }
            // split into even/odd sub-communicators and reduce within
            let sub = comm.split(comm.rank() % 2, comm.rank());
            let sub_sum = sub.allreduce(me, |x, y| x + y);
            // exchange something through the world alltoall
            let sends: Vec<Vec<u64>> = (0..comm.size())
                .map(|d| vec![me * 100 + d as u64])
                .collect();
            let recvd = comm.alltoallv(sends);
            comm.barrier();
            (sub_sum, recvd.len())
        });
        for (r, (sub_sum, n)) in got.iter().enumerate() {
            let expect: u64 = if r % 2 == 0 { 2 + 4 + 6 } else { 1 + 3 + 5 + 7 };
            assert_eq!(*sub_sum, expect, "round {round} rank {r}");
            assert_eq!(*n, 8);
        }
    }
}

#[test]
fn serial_backend_is_deterministic_across_runs() {
    // Two identical SimComm runs must produce identical traffic *and*
    // identical per-rank results — the property that makes the simulator
    // the byte-exact baseline the benches diff against.
    let a = int_er(44, 44, 3.0, 61);
    // launch::<Serial> pins the serial scheduler even if SA_BACKEND is set
    let job = |u: &Universe| {
        u.launch::<saspgemm::mpisim::Serial, _, _>(|comm| {
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let db = da.clone();
            let (c, rep) = spgemm_1d(comm, &da, &db, &Plan1D::default());
            (
                c.into_local_csc(),
                rep.fetched_bytes,
                rep.rdma_msgs,
                comm.stats(),
            )
        })
    };
    let u = Universe::new(5);
    assert_eq!(job(&u), job(&u));
}
