//! Properties of the sparsity-aware 2D/3D subsystem (PR 4 acceptance):
//!
//! * bit-identical to the serial reference across grid shapes (`1×P`,
//!   `P×1`, `√P×√P`, layer counts `c ∈ {1, 2, 4}`), fetch modes,
//!   semirings, and hub/empty-slice edge cases — integer-valued operands
//!   make every floating-point accumulation exact, so equality is `==`,
//!   not a tolerance;
//! * the collective-free `analyze_2d`/`analyze_3d` predictions equal the
//!   metered execution byte-for-byte, per rank and in total;
//! * steady-state 2D/3D multiplies through one [`SpgemmWorkspace`]
//!   allocate nothing (pool counters frozen, as in `workspace_reuse.rs`).

use saspgemm::dist::{
    analyze_2d, analyze_3d, spgemm_split_3d_sa, spgemm_split_3d_sa_ws, spgemm_split_3d_ws,
    spgemm_summa_2d, spgemm_summa_2d_sa, spgemm_summa_2d_sa_ws, spgemm_summa_2d_ws, DistMat2D,
    DistMat3D, FetchMode,
};
use saspgemm::mpisim::{Grid2D, Grid3D, Universe};
use saspgemm::sparse::gen::{erdos_renyi, rmat};
use saspgemm::sparse::semiring::{MinPlus, PlusTimes};
use saspgemm::sparse::spgemm::spgemm;
use saspgemm::sparse::{Coo, Csc, SpgemmWorkspace};

/// ER matrix with small-integer values: f64 sums over products of these
/// are exact, so distributed accumulation order cannot perturb results.
fn int_er(nrows: usize, ncols: usize, deg: f64, seed: u64) -> Csc<f64> {
    erdos_renyi(nrows, ncols, deg, seed).map(|v| (v * 7.0).round() + 1.0)
}

const MODES: [FetchMode; 4] = [
    FetchMode::FullMatrix,
    FetchMode::Block(4),
    FetchMode::ContiguousRuns,
    FetchMode::ColumnExact,
];

#[test]
fn aware_2d_bit_identical_across_grid_shapes_and_modes() {
    let a = int_er(48, 48, 4.0, 1);
    let b = int_er(48, 48, 3.0, 2);
    let expect = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
    for (pr, pc) in [(1, 4), (4, 1), (2, 2), (2, 3), (3, 2)] {
        for mode in MODES {
            let u = Universe::new(pr * pc);
            let got = u.run(|comm| {
                let grid = Grid2D::new(comm, pr, pc);
                let da = DistMat2D::from_global(&grid, &a);
                let db = DistMat2D::from_global(&grid, &b);
                let (c, rep) = spgemm_summa_2d_sa(comm, &grid, &da, &db, mode);
                assert!(
                    rep.a_fetched_bytes >= rep.a_needed_bytes,
                    "over-fetch only ever adds"
                );
                c.gather(comm, &grid)
            });
            assert_eq!(got[0].as_ref().unwrap(), &expect, "{pr}x{pc} {mode:?}");
        }
    }
}

#[test]
fn one_by_p_grid_moves_no_b_and_p_by_one_moves_no_a() {
    let a = int_er(40, 40, 4.0, 9);
    // 1×P: every rank owns its full column block of B — Algorithm 1 exactly
    let u = Universe::new(4);
    let reps = u.run(|comm| {
        let grid = Grid2D::new(comm, 1, 4);
        let da = DistMat2D::from_global(&grid, &a);
        let db = da.clone();
        let (_c, rep) = spgemm_summa_2d_sa(comm, &grid, &da, &db, FetchMode::ColumnExact);
        rep
    });
    for rep in &reps {
        assert_eq!(rep.b_shipped_bytes, 0, "1xP ships no B");
        assert_eq!(rep.b_request_bytes, 0);
    }
    assert!(reps.iter().any(|r| r.a_fetched_bytes > 0), "A moves in 1xP");
    // P×1: A stays put (each rank's block row needs only its own block)
    let reps = u.run(|comm| {
        let grid = Grid2D::new(comm, 4, 1);
        let da = DistMat2D::from_global(&grid, &a);
        let db = da.clone();
        let (_c, rep) = spgemm_summa_2d_sa(comm, &grid, &da, &db, FetchMode::ColumnExact);
        rep
    });
    for rep in &reps {
        assert_eq!(rep.a_fetched_bytes, 0, "Px1 fetches no A");
        assert_eq!(rep.a_rdma_msgs, 0);
    }
    assert!(reps.iter().any(|r| r.b_shipped_bytes > 0), "B moves in Px1");
}

#[test]
fn aware_2d_rectangular_hub_and_empty_slices() {
    // rectangular operands with a hub column, a hub row, and an empty band
    let mut coo = Coo::new(40, 56);
    for r in 0..40u32 {
        coo.push(r, 3, 1.0); // hub column
    }
    for c in 0..56u32 {
        if !(20..30).contains(&c) {
            coo.push(7, c, 2.0); // hub row with a dead band
        }
    }
    for i in 0..120u32 {
        let (r, c) = ((i * 17) % 40, (i * 31) % 56);
        if !(44..52).contains(&c) {
            coo.push(r, c, ((i % 5) + 1) as f64);
        }
    }
    let a = coo.to_csc_with(|x, _| x);
    let b = int_er(56, 33, 2.5, 4);
    let expect = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
    for (pr, pc) in [(2, 2), (1, 4), (4, 1)] {
        let u = Universe::new(pr * pc);
        let got = u.run(|comm| {
            let grid = Grid2D::new(comm, pr, pc);
            let da = DistMat2D::from_global(&grid, &a);
            let db = DistMat2D::from_global(&grid, &b);
            let (c, _) = spgemm_summa_2d_sa(comm, &grid, &da, &db, FetchMode::Block(3));
            c.gather(comm, &grid)
        });
        assert_eq!(got[0].as_ref().unwrap(), &expect, "{pr}x{pc}");
    }
    // more ranks than B columns: some ranks own empty slices
    let tiny = int_er(6, 3, 1.5, 5);
    let ta = int_er(6, 6, 2.0, 6);
    let expect = spgemm::<PlusTimes<f64>, _, _>(&ta, &tiny);
    let u = Universe::new(4);
    let got = u.run(|comm| {
        let grid = Grid2D::new(comm, 1, 4);
        let da = DistMat2D::from_global(&grid, &ta);
        let db = DistMat2D::from_global(&grid, &tiny);
        let (c, _) = spgemm_summa_2d_sa(comm, &grid, &da, &db, FetchMode::ColumnExact);
        c.gather(comm, &grid)
    });
    assert_eq!(got[0].as_ref().unwrap(), &expect);
}

#[test]
fn aware_2d_and_3d_respect_semirings() {
    // tropical (min, +) over integer weights: exact arithmetic, and a
    // genuinely different algebra than the arithmetic default
    let a = int_er(36, 36, 3.0, 11);
    let expect = spgemm::<MinPlus, _, _>(&a, &a);
    let u = Universe::new(4);
    let got = u.run(|comm| {
        let grid = Grid2D::square(comm);
        let da = DistMat2D::from_global(&grid, &a);
        let db = da.clone();
        let ws = SpgemmWorkspace::new();
        let (c, _) = spgemm_summa_2d_sa_ws::<_, MinPlus>(
            comm,
            &grid,
            &da,
            &db,
            FetchMode::ContiguousRuns,
            &ws,
        );
        c.gather(comm, &grid)
    });
    assert_eq!(got[0].as_ref().unwrap(), &expect, "2D tropical");
    // the fiber reduction combines partials with the semiring's ⊕, so the
    // tropical algebra survives the layer split too
    let u = Universe::new(8);
    let got = u.run(|comm| {
        let grid = Grid3D::new(comm, 2, 2);
        let da = DistMat3D::from_global_split_cols(&grid, &a);
        let db = DistMat3D::from_global_split_rows(&grid, &a);
        let ws = SpgemmWorkspace::new();
        let (c, _) =
            spgemm_split_3d_sa_ws::<_, MinPlus>(comm, &grid, &da, &db, FetchMode::Block(4), &ws);
        c.gather(comm)
    });
    assert_eq!(got[0].as_ref().unwrap(), &expect, "3D tropical");
}

#[test]
fn aware_3d_bit_identical_across_layer_counts() {
    let a = int_er(48, 48, 4.0, 21);
    let b = int_er(48, 48, 3.0, 22);
    let expect = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
    for (q, layers) in [(2, 1), (2, 2), (1, 4), (2, 4)] {
        for mode in [FetchMode::Block(4), FetchMode::ColumnExact] {
            let u = Universe::new(q * q * layers);
            let got = u.run(|comm| {
                let grid = Grid3D::new(comm, q, layers);
                let da = DistMat3D::from_global_split_cols(&grid, &a);
                let db = DistMat3D::from_global_split_rows(&grid, &b);
                let (c, rep) = spgemm_split_3d_sa(comm, &grid, &da, &db, mode);
                assert!(rep.peak_local_bytes > 0);
                c.gather(comm)
            });
            assert_eq!(
                got[0].as_ref().unwrap(),
                &expect,
                "{q}x{q}x{layers} {mode:?}"
            );
        }
    }
}

#[test]
fn analyze_2d_predicts_metered_traffic_exactly() {
    let a = rmat(6, 6, (0.57, 0.19, 0.19, 0.05), 1);
    let b = rmat(6, 5, (0.57, 0.19, 0.19, 0.05), 2);
    for (pr, pc) in [(2, 2), (1, 4), (4, 1), (2, 3)] {
        for mode in MODES {
            let pred = analyze_2d(&a, &b, pr, pc, mode);
            let u = Universe::new(pr * pc);
            let reps = u.run(|comm| {
                let grid = Grid2D::new(comm, pr, pc);
                let da = DistMat2D::from_global(&grid, &a);
                let db = DistMat2D::from_global(&grid, &b);
                let stats0 = comm.stats();
                let (_c, rep) = spgemm_summa_2d_sa(comm, &grid, &da, &db, mode);
                (rep, comm.stats() - stats0)
            });
            for (rank, (rep, delta)) in reps.iter().enumerate() {
                let rc = &pred.per_rank[rank];
                let tag = format!("{pr}x{pc} {mode:?} rank {rank}");
                assert_eq!(rc.a_fetch_bytes, rep.a_fetched_bytes, "{tag}: A bytes");
                assert_eq!(rc.a_rdma_msgs, rep.a_rdma_msgs, "{tag}: A msgs");
                assert_eq!(rc.b_request_bytes, rep.b_request_bytes, "{tag}: B req");
                assert_eq!(rc.b_served_bytes, rep.b_served_bytes, "{tag}: B served");
                assert_eq!(rc.b_shipped_bytes, rep.b_shipped_bytes, "{tag}: B shipped");
                assert_eq!(rc.meta_bytes, rep.meta_bytes, "{tag}: meta bytes");
                assert_eq!(
                    rc.a_fetch_bytes + rep.b_request_bytes + rep.b_served_bytes + rep.meta_bytes,
                    delta.injected_bytes(),
                    "{tag}: every injected byte accounted"
                );
            }
            let injected: u64 = reps.iter().map(|(_, d)| d.injected_bytes()).sum();
            let inj_msgs: u64 = reps.iter().map(|(_, d)| d.injected_msgs()).sum();
            assert_eq!(pred.aware.meta.bytes + pred.aware.data.bytes, injected);
            assert_eq!(pred.aware.meta.msgs + pred.aware.data.msgs, inj_msgs);
        }
    }
}

#[test]
fn analyze_2d_predicts_oblivious_summa_exactly() {
    let a = rmat(6, 6, (0.57, 0.19, 0.19, 0.05), 3);
    let pred = analyze_2d(&a, &a, 2, 2, FetchMode::ColumnExact);
    let obl = pred.oblivious.expect("square grid stages align");
    let u = Universe::new(4);
    let deltas = u.run(|comm| {
        let grid = Grid2D::square(comm);
        let da = DistMat2D::from_global(&grid, &a);
        let db = da.clone();
        let stats0 = comm.stats();
        let (_c, _rep) = spgemm_summa_2d(comm, &grid, &da, &db);
        comm.stats() - stats0
    });
    let injected: u64 = deltas.iter().map(|d| d.injected_bytes()).sum();
    let inj_msgs: u64 = deltas.iter().map(|d| d.injected_msgs()).sum();
    assert_eq!(obl.data.bytes, injected, "oblivious bytes");
    assert_eq!(obl.data.msgs, inj_msgs, "oblivious msgs");
    // rectangular stage cut (uniform over pr != pc) does not align
    assert!(analyze_2d(&a, &a, 2, 3, FetchMode::ColumnExact)
        .oblivious
        .is_none());
}

#[test]
fn analyze_3d_predicts_metered_traffic_exactly() {
    let a = int_er(40, 40, 3.5, 31);
    let b = int_er(40, 40, 3.0, 32);
    for (q, layers) in [(2, 2), (1, 4), (2, 1)] {
        let mode = FetchMode::Block(8);
        let pred = analyze_3d(&a, &b, q, layers, mode);
        let u = Universe::new(q * q * layers);
        let reps = u.run(|comm| {
            let grid = Grid3D::new(comm, q, layers);
            let da = DistMat3D::from_global_split_cols(&grid, &a);
            let db = DistMat3D::from_global_split_rows(&grid, &b);
            let stats0 = comm.stats();
            let (_c, rep) = spgemm_split_3d_sa(comm, &grid, &da, &db, mode);
            (rep, comm.stats() - stats0)
        });
        for (wr, (rep, _)) in reps.iter().enumerate() {
            assert_eq!(
                pred.per_rank_reduce[wr].bytes, rep.reduce_bytes,
                "{q}x{q}x{layers} rank {wr}: reduce bytes"
            );
        }
        let injected: u64 = reps.iter().map(|(_, d)| d.injected_bytes()).sum();
        let inj_msgs: u64 = reps.iter().map(|(_, d)| d.injected_msgs()).sum();
        assert_eq!(
            pred.aware.meta.bytes + pred.aware.data.bytes,
            injected,
            "{q}x{q}x{layers}: total bytes"
        );
        assert_eq!(
            pred.aware.meta.msgs + pred.aware.data.msgs,
            inj_msgs,
            "{q}x{q}x{layers}: total msgs"
        );
    }
}

#[test]
fn steady_state_2d_multiplies_allocate_nothing() {
    let a = erdos_renyi(120, 120, 4.0, 5);
    let u = Universe::new(4);
    let results = u.run(|comm| {
        let grid = Grid2D::square(comm);
        let da = DistMat2D::from_global(&grid, &a);
        let db = da.clone();
        let aware_ws = SpgemmWorkspace::new();
        let obl_ws = SpgemmWorkspace::new();
        let aware = |ws: &SpgemmWorkspace<f64>| {
            spgemm_summa_2d_sa_ws::<_, saspgemm::sparse::semiring::PlusTimes<f64>>(
                comm,
                &grid,
                &da,
                &db,
                FetchMode::default(),
                ws,
            )
            .0
        };
        let obl = |ws: &SpgemmWorkspace<f64>| spgemm_summa_2d_ws(comm, &grid, &da, &db, ws).0;
        let first_aware = aware(&aware_ws);
        let first_obl = obl(&obl_ws);
        let _ = (aware(&aware_ws), obl(&obl_ws)); // second warm-up settles sizes
        let (warm_a, warm_o) = (aware_ws.counters(), obl_ws.counters());
        for _ in 0..3 {
            assert_eq!(aware(&aware_ws).local(), first_aware.local());
            assert_eq!(obl(&obl_ws).local(), first_obl.local());
        }
        (warm_a, aware_ws.counters(), warm_o, obl_ws.counters())
    });
    for (warm_a, steady_a, warm_o, steady_o) in results {
        for (warm, steady, label) in [(warm_a, steady_a, "aware"), (warm_o, steady_o, "oblivious")]
        {
            assert!(warm.total_allocs() > 0, "{label}: warm-up does allocate");
            assert_eq!(
                steady.scratch_allocs, warm.scratch_allocs,
                "{label}: steady state creates no scratch"
            );
            assert_eq!(
                steady.chunk_allocs, warm.chunk_allocs,
                "{label}: steady state creates no chunk buffers"
            );
            assert_eq!(
                steady.idx_allocs, warm.idx_allocs,
                "{label}: steady state creates no index buffers"
            );
            assert!(
                steady.chunk_reuses > warm.chunk_reuses,
                "{label}: steady state is served from the pools"
            );
        }
    }
}

#[test]
fn steady_state_3d_multiplies_allocate_nothing() {
    let a = erdos_renyi(96, 96, 4.0, 8);
    let u = Universe::new(8);
    let results = u.run(|comm| {
        let grid = Grid3D::new(comm, 2, 2);
        let da = DistMat3D::from_global_split_cols(&grid, &a);
        let db = DistMat3D::from_global_split_rows(&grid, &a);
        let ws = SpgemmWorkspace::new();
        let run = || {
            spgemm_split_3d_sa_ws::<_, saspgemm::sparse::semiring::PlusTimes<f64>>(
                comm,
                &grid,
                &da,
                &db,
                FetchMode::default(),
                &ws,
            )
            .0
        };
        let obl_ws = SpgemmWorkspace::new();
        let obl = || spgemm_split_3d_ws(comm, &grid, &da, &db, &obl_ws).0;
        let first = run();
        let first_obl = obl();
        let _ = (run(), obl());
        let (warm, warm_o) = (ws.counters(), obl_ws.counters());
        for _ in 0..3 {
            assert_eq!(run().local, first.local);
            assert_eq!(obl().local, first_obl.local);
        }
        (warm, ws.counters(), warm_o, obl_ws.counters())
    });
    for (warm, steady, warm_o, steady_o) in results {
        for (w, s) in [(warm, steady), (warm_o, steady_o)] {
            assert_eq!(s.scratch_allocs, w.scratch_allocs);
            assert_eq!(s.chunk_allocs, w.chunk_allocs);
            assert_eq!(s.idx_allocs, w.idx_allocs);
        }
    }
}
