//! Prefetch-meter property tests (PR 10): the accounting half of the
//! overlap engine is pure, so its invariants are swept exhaustively
//! without threads or sockets:
//!
//! * conservation — `prefetched_bytes + demand_bytes == planned_bytes`
//!   exactly, per stage and accumulated;
//! * exact-once coverage — the admitted prefix and the demand suffix
//!   partition the stage plan: no range fetched twice, none skipped;
//! * budget — the admitted prefix's byte sum never exceeds
//!   `max_inflight`, and admission is *maximal* (the next range would
//!   not have fit, or there is no next range).
//!
//! A final execution-level test drives [`Prefetcher::stage`] itself with a
//! recording fetch closure and checks the same exact-once coverage on the
//! ranges the engine actually issues, async and serial alike.

use proptest::prelude::*;
use saspgemm::mpisim::{PrefetchConfig, PrefetchMeter, Prefetcher, Universe};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn admitted_prefix_plus_demand_suffix_covers_plan_exactly(
        sizes in proptest::collection::vec(0u64..1 << 32, 0..24),
        budget in 0u64..1 << 34,
    ) {
        let mut m = PrefetchMeter::new();
        let k = m.admit(&sizes, budget);
        prop_assert!(k <= sizes.len());
        // the split is an index partition: 0..k background, k..n demand —
        // each range lands on exactly one path
        let prefix: u64 = sizes[..k].iter().sum();
        let suffix: u64 = sizes[k..].iter().sum();
        prop_assert_eq!(m.prefetched_bytes(), prefix);
        prop_assert_eq!(m.demand_bytes(), suffix);
        prop_assert_eq!(m.planned_bytes(), prefix + suffix);
        prop_assert_eq!(m.planned_bytes(), sizes.iter().sum::<u64>());
        prop_assert_eq!(m.stages(), 1);
    }

    #[test]
    fn admitted_prefix_respects_budget_and_is_maximal(
        sizes in proptest::collection::vec(0u64..1 << 32, 0..24),
        budget in 0u64..1 << 34,
    ) {
        let mut m = PrefetchMeter::new();
        let k = m.admit(&sizes, budget);
        let prefix: u64 = sizes[..k].iter().sum();
        prop_assert!(prefix <= budget, "admitted {prefix} over budget {budget}");
        // maximal: either everything was admitted, or the next range
        // would have pushed the in-flight total past the budget
        if k < sizes.len() {
            let next = prefix.checked_add(sizes[k]);
            prop_assert!(
                next.is_none() || next.unwrap() > budget,
                "range {k} ({}) fit under budget {budget} but was demand-fetched",
                sizes[k]
            );
        }
    }

    #[test]
    fn totals_accumulate_across_stages(
        plans in proptest::collection::vec(
            proptest::collection::vec(0u64..1 << 24, 0..12),
            0..8,
        ),
        budget in 0u64..1 << 26,
    ) {
        let mut m = PrefetchMeter::new();
        let mut want_prefetched = 0u64;
        let mut want_demand = 0u64;
        for sizes in &plans {
            let k = m.admit(sizes, budget);
            want_prefetched += sizes[..k].iter().sum::<u64>();
            want_demand += sizes[k..].iter().sum::<u64>();
        }
        prop_assert_eq!(m.prefetched_bytes(), want_prefetched);
        prop_assert_eq!(m.demand_bytes(), want_demand);
        prop_assert_eq!(m.planned_bytes(), want_prefetched + want_demand);
        prop_assert_eq!(m.stages(), plans.len() as u64);
    }

    #[test]
    fn oversized_single_range_is_never_admitted(
        head in 0u64..1 << 20,
        budget in 0u64..1 << 20,
    ) {
        // a range strictly larger than the whole budget must go to the
        // demand path, whatever precedes it
        let sizes = [head.min(budget), budget + 1];
        let mut m = PrefetchMeter::new();
        let k = m.admit(&sizes, budget);
        prop_assert!(k <= 1, "oversized range admitted");
        prop_assert!(m.prefetched_bytes() <= budget);
    }
}

/// Execution-level exact-once coverage: whatever path the engine takes —
/// async (threads backend, budget splits) or serial degradation (SimComm)
/// — the fetch closure sees a set of ranges that concatenates to `0..n`
/// with no overlap and no gap, and the meter's split matches it.
#[test]
fn stage_issues_each_range_exactly_once() {
    let sizes: Vec<u64> = vec![100, 300, 50, 700, 20, 20];
    fn drive<C: saspgemm::mpisim::Comm>(
        comm: &C,
        sizes: &[u64],
        budget: u64,
    ) -> (Vec<std::ops::Range<usize>>, u64, u64) {
        let mut pf = Prefetcher::new(comm, PrefetchConfig::budget(budget));
        let mut seen: Vec<std::ops::Range<usize>> = Vec::new();
        pf.stage(sizes, &mut seen, |range, seen| seen.push(range), || ());
        (
            seen,
            pf.meter().prefetched_bytes(),
            pf.meter().demand_bytes(),
        )
    }
    let check = |(seen, prefetched, demand): (Vec<std::ops::Range<usize>>, u64, u64),
                 budget: u64,
                 what: &str| {
        // ranges must concatenate to exactly 0..n: no overlap, no gap
        let mut next = 0usize;
        for r in &seen {
            assert_eq!(
                r.start, next,
                "{what} budget {budget}: gap or overlap at {r:?}"
            );
            next = r.end;
        }
        assert_eq!(
            next,
            sizes.len(),
            "{what} budget {budget}: plan not covered"
        );
        assert_eq!(
            prefetched + demand,
            sizes.iter().sum::<u64>(),
            "{what} budget {budget}: conservation"
        );
        assert!(prefetched <= budget, "{what} budget {budget}: overrun");
    };
    for budget in [0u64, 150, 400, u64::MAX] {
        let u = Universe::new(2);
        // serial simulator: the engine degrades to deterministic in-order
        // issue (no background thread, zero prefetched bytes)
        for v in u.run(|comm| drive(comm, &sizes, budget)) {
            assert_eq!(v.1, 0, "serial backend must not claim async prefetch");
            check(v, budget, "serial");
        }
        // threads backend: the background path genuinely runs, so the
        // budget split is live
        for v in u.launch::<saspgemm::mpisim::Threads, _, _>(|comm| drive(comm, &sizes, budget)) {
            check(v, budget, "threads");
        }
    }
}
