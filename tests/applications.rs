//! Integration tests of the evaluation applications against serial oracles.

use saspgemm::apps::bc::{bc_batch_1d, bc_batch_2d, bc_batch_3d, bc_serial, pick_sources};
use saspgemm::apps::galerkin::{galerkin_product, RightAlgo};
use saspgemm::apps::mis2::{mis2, verify_mis2};
use saspgemm::apps::restriction::restriction_operator;
use saspgemm::apps::triangle::{triangles_1d, triangles_serial};
use saspgemm::dist::reference::serial_galerkin;
use saspgemm::dist::{uniform_offsets, DistMat1D, Plan1D};
use saspgemm::mpisim::Universe;
use saspgemm::sparse::gen::{erdos_renyi_square, rmat, sbm, stencil3d};

#[test]
fn galerkin_pipeline_matches_serial_triple_product() {
    for (label, a) in [
        ("stencil", stencil3d(6, 5, 4, true)),
        ("sbm", sbm(150, 3, 8.0, 1.0, true, 2)),
    ] {
        let r = restriction_operator(&a, 9);
        let expect = serial_galerkin(&r, &a);
        for right in [RightAlgo::OneD, RightAlgo::Outer] {
            let u = Universe::new(4);
            let got = u
                .run(|comm| {
                    let da =
                        DistMat1D::from_global(comm, &a, &uniform_offsets(a.ncols(), comm.size()));
                    let (c, _) = galerkin_product(comm, &da, &r, right, &Plan1D::default());
                    c.gather(comm)
                })
                .remove(0)
                .unwrap();
            assert!(
                got.max_abs_diff(&expect) < 1e-9,
                "{label} {right:?}: {}",
                got.max_abs_diff(&expect)
            );
        }
    }
}

#[test]
fn bc_engines_agree_with_each_other_and_serial() {
    let g = rmat(6, 6, (0.57, 0.19, 0.19, 0.05), 3);
    let sources = pick_sources(g.nrows(), 10, 4);
    let expect = bc_serial(&g, &sources);
    let close = |xs: &[f64]| xs.iter().zip(&expect).all(|(a, b)| (a - b).abs() < 1e-9);

    let u = Universe::new(4);
    let o1 = u
        .run(|comm| bc_batch_1d(comm, &g, &sources, &Plan1D::default()))
        .remove(0);
    assert!(close(&o1.scores), "1D");

    let u = Universe::new(9);
    let o2 = u.run(|comm| bc_batch_2d(comm, &g, &sources)).remove(0);
    assert!(close(&o2.scores), "2D on 3x3");

    let u = Universe::new(8);
    let o3 = u.run(|comm| bc_batch_3d(comm, 2, &g, &sources)).remove(0);
    assert!(close(&o3.scores), "3D 2x2x2");

    // level counts agree (same BFS structure regardless of distribution)
    assert_eq!(o1.levels, o2.levels);
    assert_eq!(o1.levels, o3.levels);
}

#[test]
fn bc_batching_is_additive() {
    // running two halves of the sources separately must sum to the full run
    let g = erdos_renyi_square(120, 5.0, 5);
    let sources = pick_sources(g.nrows(), 8, 6);
    let (left, right) = sources.split_at(4);
    let u = Universe::new(2);
    let full = u
        .run(|comm| bc_batch_1d(comm, &g, &sources, &Plan1D::default()))
        .remove(0);
    let a = u
        .run(|comm| bc_batch_1d(comm, &g, left, &Plan1D::default()))
        .remove(0);
    let b = u
        .run(|comm| bc_batch_1d(comm, &g, right, &Plan1D::default()))
        .remove(0);
    for v in 0..g.nrows() {
        assert!(
            (full.scores[v] - a.scores[v] - b.scores[v]).abs() < 1e-9,
            "vertex {v}"
        );
    }
}

#[test]
fn mis2_and_restriction_on_all_structures() {
    for (label, a) in [
        ("stencil", stencil3d(5, 5, 5, true)),
        ("er", erdos_renyi_square(250, 5.0, 7)),
        ("sbm", sbm(200, 5, 10.0, 1.0, true, 8)),
    ] {
        let roots = mis2(&a, 11);
        verify_mis2(&a, &roots).unwrap_or_else(|e| panic!("{label}: {e}"));
        let r = restriction_operator(&a, 11);
        assert_eq!(r.nnz(), a.nrows(), "{label}: one nnz per row");
        assert!(r.ncols() <= roots.len(), "{label}");
    }
}

#[test]
fn triangle_counts_distributed_vs_serial() {
    for seed in [1u64, 2, 3] {
        let g = erdos_renyi_square(150, 8.0, seed);
        let expect = triangles_serial(&g);
        let u = Universe::new(3);
        let got = u
            .run(|comm| triangles_1d(comm, &g, &Plan1D::default()))
            .remove(0);
        assert_eq!(got, expect, "seed {seed}");
    }
}
