//! Fault-injection acceptance suite (PR 6): the runtime must convert rank
//! deaths into *typed, attributed, bounded* failures instead of hangs.
//!
//! The matrix: every distributed workload (1D / 2D / 3D sparsity-aware
//! multiply, a cached `SpgemmSession` multiply + `update_a`, and the
//! `spgemm_auto` tuner pick) × every fault shape (abort at the victim's
//! first communication call, abort mid-stream inside a collective's
//! constituent point-to-point calls, and a straggler delay) × all three
//! backends (`launch::<Serial>` / `launch::<Threads>` /
//! `try_run_procs`). In every abort cell the job must terminate within
//! the watchdog deadline with the victim reporting its own panic and
//! **every** survivor reporting [`CommError::PeerFailed`] naming the
//! victim.
//!
//! The `procs` backend adds the fault shapes only real processes can
//! exhibit: a rank destroyed by `SIGKILL` mid-job (no unwinding, no abort
//! broadcast — survivors detect the dead socket, the parent classifies
//! the corpse from `waitpid`), and a cross-process deadlock where each
//! process's *own* watchdog must convert the stall into a typed
//! [`CommError::Timeout`] (unlike in-process backends there is one
//! watchdog per process, so several ranks may time out — see
//! docs/BACKENDS.md's porting log).
//!
//! Plus the two supporting properties:
//! * **wrapper neutrality** — a zero-fault [`FaultComm`] is byte-identical
//!   to the bare backend (same results, same metered traffic), so the
//!   harness measures the runtime, not itself;
//! * **replayability** — the same seeded [`FaultPlan`] yields the same
//!   surviving-rank error set run after run on the serial backend.
//!
//! PR 8 extends the suite from *detection* to *recovery*: the same typed
//! failures, now driven through [`Universe::run_recoverable`] with
//! checkpointing jobs. The recovery matrix sweeps {cached session
//! multiply, BC batches, MCL iteration} × {abort at the first op, a
//! straggler converted to `Timeout` by a short watchdog, `SIGKILL`
//! mid-iteration on procs} × {`Sim`, `Threads`, `Procs`}, asserting that
//! every recovered run's output is identical to the fault-free run and
//! the restart count stays within the [`RetryPolicy`]. The flagship
//! acceptance test SIGKILLs a rank mid-iteration under procs and checks
//! the recovered output *and* the post-restart `CommStats` segment
//! bit-identical against a fault-free continuation from the same
//! checkpoints; a zero-fault pass through `run_recoverable` must stay
//! byte-identical to `try_run` on every backend. `SA_FAULT_SEED` narrows
//! the seeded-replay sweeps to one seed for CI replay jobs.

use saspgemm::dist::{
    agreed_step, load_wire_or_fresh, save_wire, spgemm_1d, spgemm_1d_overlap_ws, spgemm_auto,
    spgemm_split_3d_sa, spgemm_summa_2d_sa, spgemm_summa_2d_sa_ws_cfg, uniform_offsets,
    CacheConfig, CheckpointStore, DistMat1D, DistMat2D, DistMat3D, FetchMode, FileStore, MemStore,
    Plan1D, SessionSnapshot, SpgemmSession,
};
use saspgemm::mpisim::{
    arm_frame_plan, kill_self_with_sigkill, mute_heartbeats, Backend, Comm, CommError, CostModel,
    FaultComm, FaultPlan, Grid2D, Grid3D, Mode, PrefetchConfig, Primitive, RankError,
    RecoverableJob, RecoveryReport, RetryPolicy, Serial, Threads, Universe,
};
use saspgemm::sparse::gen::erdos_renyi;
use saspgemm::sparse::semiring::PlusTimes;
use saspgemm::sparse::{Csc, SpgemmWorkspace};
use std::sync::Once;
use std::time::Duration;

/// Suppress the default panic banner for the panics this suite *plans*
/// (injected faults and the typed `CommError` payloads they trigger on
/// peers); real, unexpected panics still print.
fn quiet_expected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let expected = p.downcast_ref::<CommError>().is_some()
                || p.downcast_ref::<String>()
                    .is_some_and(|s| s.contains("injected fault"))
                || p.downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("injected fault"));
            if !expected {
                default(info);
            }
        }));
    });
}

/// ER matrix with small-integer values, so f64 accumulation is exact and
/// fingerprints compare with `==`.
fn int_er(n: usize, deg: f64, seed: u64) -> Csc<f64> {
    erdos_renyi(n, n, deg, seed).map(|v| (v * 7.0).round() + 1.0)
}

/// Position-weighted checksum of a matrix — order-independent, exact for
/// integer-valued operands.
fn fp(c: &Csc<f64>) -> String {
    let mut sum = 0.0f64;
    for (r, col, v) in c.iter() {
        sum += v * ((3 * r + 5 * col + 7) as f64);
    }
    format!("{}x{} nnz={} sum={}", c.nrows(), c.ncols(), c.nnz(), sum)
}

fn fp_opt(c: &Option<Csc<f64>>) -> String {
    match c {
        Some(c) => fp(c),
        None => "none".to_string(),
    }
}

/// Every workload of the fault matrix, identified by name so one generic
/// driver can sweep them. Returns a wall-clock-free fingerprint (results +
/// metered traffic), so a straggler run must fingerprint identically to a
/// clean one.
fn workload<C: Comm>(name: &str, comm: &C) -> String {
    match name {
        "1d" => {
            let a = int_er(48, 3.0, 101);
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let db = da.clone();
            let before = comm.stats();
            let (c, rep) = spgemm_1d(comm, &da, &db, &Plan1D::default());
            format!(
                "{} {:?} fetched={}",
                fp(&c.into_local_csc()),
                comm.stats() - before,
                rep.fetched_bytes
            )
        }
        "2d" => {
            let a = int_er(40, 3.0, 102);
            let b = int_er(40, 2.5, 103);
            let grid = Grid2D::new(comm, 2, 2);
            let da = DistMat2D::from_global(&grid, &a);
            let db = DistMat2D::from_global(&grid, &b);
            let before = comm.stats();
            let (c, rep) = spgemm_summa_2d_sa(comm, &grid, &da, &db, FetchMode::Block(4));
            format!(
                "{} {:?} shipped={}",
                fp_opt(&c.gather(comm, &grid)),
                comm.stats() - before,
                rep.b_shipped_bytes
            )
        }
        "3d" => {
            let a = int_er(36, 3.0, 104);
            let b = int_er(36, 3.0, 105);
            let grid = Grid3D::new(comm, 2, 1);
            let da = DistMat3D::from_global_split_cols(&grid, &a);
            let db = DistMat3D::from_global_split_rows(&grid, &b);
            let before = comm.stats();
            let (c, rep) = spgemm_split_3d_sa(comm, &grid, &da, &db, FetchMode::Block(4));
            format!(
                "{} {:?} reduced={}",
                fp_opt(&c.gather(comm)),
                comm.stats() - before,
                rep.reduce_bytes
            )
        }
        "session" => {
            let a = int_er(60, 3.0, 106);
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let db = da.clone();
            let mut session = SpgemmSession::create(
                comm,
                da.clone(),
                Plan1D::default(),
                CacheConfig::unlimited(),
            );
            let (c1, r1) = session.multiply(comm, &db);
            let a2 = a.map(|v| v + 1.0);
            let invalidated = session.update_a(comm, DistMat1D::from_global(comm, &a2, &offsets));
            let (c2, r2) = session.multiply(comm, &db);
            format!(
                "{} {} inv={} fresh=({},{}) hit=({},{})",
                fp(&c1.into_local_csc()),
                fp(&c2.into_local_csc()),
                invalidated,
                r1.fresh_bytes,
                r2.fresh_bytes,
                r1.cache_hit_bytes,
                r2.cache_hit_bytes
            )
        }
        "auto" => {
            let a = int_er(48, 3.0, 107);
            let b = int_er(48, 3.0, 108);
            let (c, rep) = spgemm_auto(comm, &a, &b, &CostModel::slingshot());
            format!("{} {:?} {:?}", fp_opt(&c), rep.choice, rep.comm)
        }
        other => panic!("unknown workload {other}"),
    }
}

/// All workloads run on 4 ranks (the 3D case as a 2x2 grid x 1 layer).
const WORKLOADS: [&str; 5] = ["1d", "2d", "3d", "session", "auto"];
const NRANKS: usize = 4;
const VICTIM: usize = 1;

/// A long deadline that only fires if failure propagation itself is
/// broken: a regression hangs for a minute and then fails typed, instead
/// of hanging the suite forever.
fn universe() -> Universe {
    Universe::new(NRANKS).with_watchdog(Some(Duration::from_secs(60)))
}

/// Run `name` with `plan` injected on every rank; return the per-rank
/// outcomes.
fn faulted_run<M: Mode>(name: &'static str, plan: &FaultPlan) -> Vec<Result<String, RankError>> {
    universe().try_launch::<M, _, _>(|comm| {
        let fc = FaultComm::new(comm.split(0, comm.rank()), plan.clone());
        workload(name, &fc)
    })
}

/// The abort half of the matrix: victim dies at `at_op`, every survivor
/// must fail typed, naming the victim.
fn assert_abort_matrix<M: Mode>(at_op: u64) {
    quiet_expected_panics();
    for name in WORKLOADS {
        let plan = FaultPlan::abort_at(VICTIM, at_op);
        let out = faulted_run::<M>(name, &plan);
        assert_eq!(out.len(), NRANKS);
        for (r, o) in out.iter().enumerate() {
            match o {
                Ok(res) => panic!(
                    "{name} at_op={at_op}: rank {r} finished ({res}) despite the injected fault"
                ),
                Err(RankError::Panic { summary }) => {
                    assert_eq!(
                        r, VICTIM,
                        "{name} at_op={at_op}: non-victim rank {r} panicked: {summary}"
                    );
                    assert!(
                        summary.contains("injected fault"),
                        "{name} at_op={at_op}: victim died of something else: {summary}"
                    );
                }
                Err(RankError::Comm(CommError::PeerFailed { rank, primitive })) => {
                    assert_ne!(r, VICTIM, "{name} at_op={at_op}: victim saw a peer failure");
                    assert_eq!(
                        *rank, VICTIM,
                        "{name} at_op={at_op}: rank {r} blamed rank {rank} (in {primitive}) instead of the victim"
                    );
                }
                Err(e) => panic!("{name} at_op={at_op}: rank {r} failed untyped: {e:?}"),
            }
        }
    }
}

#[test]
fn abort_at_first_op_fails_every_survivor_typed_serial() {
    assert_abort_matrix::<Serial>(0);
}

#[test]
fn abort_at_first_op_fails_every_survivor_typed_threads() {
    assert_abort_matrix::<Threads>(0);
}

#[test]
fn abort_mid_collective_fails_every_survivor_typed_serial() {
    assert_abort_matrix::<Serial>(5);
}

#[test]
fn abort_mid_collective_fails_every_survivor_typed_threads() {
    assert_abort_matrix::<Threads>(5);
}

/// The straggler half of the matrix: a delayed rank stalls the job but
/// every rank still completes, with results and metered traffic identical
/// to a clean run.
fn assert_straggler_matrix<M: Mode>() {
    quiet_expected_panics();
    for name in WORKLOADS {
        let clean = faulted_run::<M>(name, &FaultPlan::none());
        let slow = faulted_run::<M>(
            name,
            &FaultPlan::delay_at(VICTIM, 3, Duration::from_millis(30)),
        );
        for (r, (c, s)) in clean.iter().zip(&slow).enumerate() {
            let c = c
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}: clean run failed on rank {r}: {e:?}"));
            let s = s
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}: straggler run failed on rank {r}: {e:?}"));
            assert_eq!(
                c, s,
                "{name}: a straggler changed rank {r}'s results/traffic"
            );
        }
    }
}

#[test]
fn straggler_stalls_but_completes_identically_serial() {
    assert_straggler_matrix::<Serial>();
}

#[test]
fn straggler_stalls_but_completes_identically_threads() {
    assert_straggler_matrix::<Threads>();
}

/// Wrapper neutrality: a zero-fault `FaultComm` must be indistinguishable
/// from the bare backend on the backend-equivalence surface — same
/// results, same metered traffic, per rank, on both backends.
#[test]
fn zero_fault_wrapper_is_byte_identical_to_bare_backend() {
    for name in WORKLOADS {
        let u = universe();
        let bare = u.launch::<Serial, _, _>(|comm| workload(name, comm));
        let wrapped = u.launch::<Serial, _, _>(|comm| {
            workload(
                name,
                &FaultComm::new(comm.split(0, comm.rank()), FaultPlan::none()),
            )
        });
        assert_eq!(
            bare, wrapped,
            "{name}: wrapper perturbed the serial backend"
        );
        let bare_t = u.launch::<Threads, _, _>(|comm| workload(name, comm));
        let wrapped_t = u.launch::<Threads, _, _>(|comm| {
            workload(
                name,
                &FaultComm::new(comm.split(0, comm.rank()), FaultPlan::none()),
            )
        });
        assert_eq!(
            bare_t, wrapped_t,
            "{name}: wrapper perturbed the threads backend"
        );
        assert_eq!(bare, bare_t, "{name}: backends diverged");
    }
}

// ---------------------------------------------------------------------------
// The procs backend: the same matrix across real process boundaries, plus
// the fault shapes only OS processes can exhibit.
// ---------------------------------------------------------------------------

/// [`faulted_run`] on the process-per-rank backend: every rank is a forked
/// OS process, the injected panic unwinds inside the child, and the typed
/// outcome crosses back over a socket.
fn faulted_run_procs(name: &'static str, plan: &FaultPlan) -> Vec<Result<String, RankError>> {
    universe().try_run_procs(|comm| {
        let fc = FaultComm::new(comm.split(0, comm.rank()), plan.clone());
        workload(name, &fc)
    })
}

/// The abort matrix on procs: identical acceptance to the in-process
/// backends — victim panics "injected fault", every survivor fails
/// `PeerFailed` naming the victim (the victim's Abort broadcast, not a
/// guessed-at socket EOF, carries the attribution).
fn assert_abort_matrix_procs(at_op: u64) {
    quiet_expected_panics();
    for name in WORKLOADS {
        let plan = FaultPlan::abort_at(VICTIM, at_op);
        let out = faulted_run_procs(name, &plan);
        assert_eq!(out.len(), NRANKS);
        for (r, o) in out.iter().enumerate() {
            match o {
                Ok(res) => panic!(
                    "{name} at_op={at_op}: rank {r} finished ({res}) despite the injected fault"
                ),
                Err(RankError::Panic { summary }) => {
                    assert_eq!(
                        r, VICTIM,
                        "{name} at_op={at_op}: non-victim rank {r} panicked: {summary}"
                    );
                    assert!(
                        summary.contains("injected fault"),
                        "{name} at_op={at_op}: victim died of something else: {summary}"
                    );
                }
                Err(RankError::Comm(CommError::PeerFailed { rank, primitive })) => {
                    assert_ne!(r, VICTIM, "{name} at_op={at_op}: victim saw a peer failure");
                    assert_eq!(
                        *rank, VICTIM,
                        "{name} at_op={at_op}: rank {r} blamed rank {rank} (in {primitive}) instead of the victim"
                    );
                }
                Err(e) => panic!("{name} at_op={at_op}: rank {r} failed untyped: {e:?}"),
            }
        }
    }
}

#[test]
fn abort_at_first_op_fails_every_survivor_typed_procs() {
    assert_abort_matrix_procs(0);
}

#[test]
fn abort_mid_collective_fails_every_survivor_typed_procs() {
    assert_abort_matrix_procs(5);
}

#[test]
fn straggler_stalls_but_completes_identically_procs() {
    quiet_expected_panics();
    for name in WORKLOADS {
        let clean = faulted_run_procs(name, &FaultPlan::none());
        let slow = faulted_run_procs(
            name,
            &FaultPlan::delay_at(VICTIM, 3, Duration::from_millis(30)),
        );
        for (r, (c, s)) in clean.iter().zip(&slow).enumerate() {
            let c = c
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}: clean procs run failed on rank {r}: {e:?}"));
            let s = s.as_ref().unwrap_or_else(|e| {
                panic!("{name}: straggler procs run failed on rank {r}: {e:?}")
            });
            assert_eq!(
                c, s,
                "{name}: a straggler changed rank {r}'s results/traffic"
            );
        }
    }
}

/// The fault no in-process backend can model: a rank destroyed by
/// `SIGKILL`. Nothing unwinds, no Abort is broadcast — survivors must
/// detect the dead sockets (EOF without a Bye poisons the job naming the
/// vanished peer) and the parent must classify the corpse from `waitpid`.
#[test]
fn sigkill_mid_job_fails_every_survivor_typed_procs() {
    quiet_expected_panics();
    let out = universe().try_run_procs(|comm| {
        if comm.rank() == VICTIM {
            kill_self_with_sigkill();
        }
        workload("1d", comm)
    });
    assert_eq!(out.len(), NRANKS);
    for (r, o) in out.iter().enumerate() {
        match o {
            Err(RankError::Panic { summary }) if r == VICTIM => assert!(
                summary.contains("signal 9"),
                "victim's corpse misclassified: {summary}"
            ),
            Err(RankError::Comm(CommError::PeerFailed { rank, .. })) if r != VICTIM => {
                assert_eq!(*rank, VICTIM, "rank {r} blamed rank {rank} for the SIGKILL");
            }
            other => panic!("rank {r}: expected typed SIGKILL fallout, got {other:?}"),
        }
    }
}

/// Cross-process stall detection: every process deadlocks in a circular
/// recv that no one serves; each process's own watchdog must fire and
/// convert the stall into a typed `Timeout` (or `PeerFailed`, if a peer's
/// abort broadcast lands first — with one watchdog per process, *several*
/// ranks may time out, unlike the in-process backends' single shared
/// scheduler; the porting log in docs/BACKENDS.md records this semantic
/// difference).
#[test]
fn cross_process_deadlock_times_out_typed_procs() {
    quiet_expected_panics();
    let out = Universe::new(NRANKS)
        .with_watchdog(Some(Duration::from_secs(2)))
        .try_run_procs(|comm| {
            let v: Vec<u64> = comm.recv_vec((comm.rank() + 1) % comm.size(), 999);
            format!("{v:?}") // never reached: tag 999 is never sent
        });
    let mut timeouts = 0;
    for (r, o) in out.iter().enumerate() {
        match o {
            Err(RankError::Comm(CommError::Timeout { primitive, .. })) => {
                timeouts += 1;
                assert_eq!(*primitive, Primitive::Recv, "rank {r} timed out elsewhere");
            }
            Err(RankError::Comm(CommError::PeerFailed { .. })) => {}
            other => panic!("rank {r}: expected Timeout or PeerFailed, got {other:?}"),
        }
    }
    assert!(timeouts >= 1, "no process watchdog fired: {out:?}");
}

/// The seeds the replay tests sweep. CI's seeded-replay job pins one
/// seed per matrix leg via `SA_FAULT_SEED`; without it the tests sweep
/// the three fixed seeds.
fn fault_seeds() -> Vec<u64> {
    match std::env::var("SA_FAULT_SEED") {
        Ok(s) => vec![s.trim().parse().expect("SA_FAULT_SEED must be a u64")],
        Err(_) => vec![1, 7, 99],
    }
}

/// Replayability: the same seeded plan must produce the same
/// surviving-rank error set on the deterministic serial backend, run
/// after run — what makes a red fault run debuggable.
#[test]
fn seeded_fault_runs_are_replayable() {
    quiet_expected_panics();
    for seed in fault_seeds() {
        let plan = FaultPlan::seeded(seed, NRANKS, 8);
        let victim = plan.victim().expect("seeded plan kills someone");
        let shape = |out: &[Result<String, RankError>]| -> Vec<String> {
            out.iter()
                .map(|o| match o {
                    Ok(_) => "ok".to_string(),
                    Err(RankError::Panic { .. }) => "panic".to_string(),
                    Err(RankError::Comm(CommError::PeerFailed { rank, .. })) => {
                        format!("peer-failed({rank})")
                    }
                    Err(e) => format!("{e:?}"),
                })
                .collect()
        };
        let first = shape(&faulted_run::<Serial>("1d", &plan));
        let second = shape(&faulted_run::<Serial>("1d", &plan));
        assert_eq!(first, second, "seed {seed}: fault run not replayable");
        assert_eq!(
            first[victim], "panic",
            "seed {seed}: victim {victim} survived"
        );
    }
}

// ---------------------------------------------------------------------------
// Recovery (PR 8): the typed failures above, driven through
// `Universe::run_recoverable` with checkpointing jobs — faults become
// completed runs instead of red outcomes.
// ---------------------------------------------------------------------------

/// The three checkpointing workloads of the recovery matrix. Each returns
/// `(logical, segment)`: `logical` is the result fingerprint that must be
/// identical between a recovered run and a fault-free one (outputs,
/// iteration counts, cumulative `SessionStats` — all carried through the
/// checkpoint), `segment` is the final attempt's metered `CommStats`,
/// which is only comparable between runs that resumed from the same
/// checkpoint state (the flagship test below exploits exactly that).
fn recovery_workload<C: Comm>(
    name: &str,
    comm: &C,
    store: &dyn CheckpointStore,
) -> (String, String) {
    let me = comm.rank();
    let logical = match name {
        // Three cached multiplies with a `SessionSnapshot` checkpoint
        // before each; a restarted rank resumes with the fetch cache and
        // cumulative stats of the attempt that died. The `_overlap`
        // variant runs the same job with the prefetch engine on — a fault
        // mid-prefetch must leave nothing torn in the resumed state.
        "session" | "session_overlap" => {
            let a = int_er(48, 3.0, 201);
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let db = da.clone();
            let tag = if name == "session_overlap" {
                "rec.session.ov"
            } else {
                "rec.session"
            };
            let loaded: Option<(u64, Vec<String>, SessionSnapshot)> =
                load_wire_or_fresh(store, me, tag).expect("readable checkpoint store");
            let step = agreed_step(comm, loaded.as_ref().map(|(k, ..)| *k));
            let resume = step.and_then(|k| loaded.filter(|(lk, ..)| *lk == k));
            let mut session = SpgemmSession::create(
                comm,
                da.clone(),
                Plan1D::default(),
                CacheConfig::unlimited(),
            );
            if name == "session_overlap" {
                session.set_prefetch(PrefetchConfig::on());
            }
            let (mut fps, mut k) = match resume {
                Some((k, fps, snap)) => {
                    session.restore(&snap);
                    (fps, k)
                }
                None => (Vec::new(), 0),
            };
            while k < 3 {
                save_wire(store, me, tag, &(k, fps.clone(), session.snapshot()))
                    .expect("writable checkpoint store");
                let (c, rep) = session.multiply(comm, &db);
                fps.push(format!(
                    "{} fresh={} hit={}",
                    fp(&c.into_local_csc()),
                    rep.fresh_bytes,
                    rep.cache_hit_bytes
                ));
                k += 1;
            }
            store.remove(me, tag).expect("removable checkpoint");
            format!("{fps:?} {:?}", session.stats())
        }
        // Two BC batches through the recoverable session engine.
        "bc" => {
            let a = int_er(40, 3.0, 202);
            let batches: Vec<Vec<u32>> = vec![
                saspgemm::apps::bc::pick_sources(40, 6, 301),
                saspgemm::apps::bc::pick_sources(40, 6, 302),
            ];
            let (outs, stats) = saspgemm::apps::bc::bc_batches_1d_session_recoverable(
                comm,
                &a,
                &batches,
                &Plan1D::default(),
                CacheConfig::unlimited(),
                store,
                "rec.bc",
            );
            let per_batch: Vec<String> = outs
                .iter()
                .map(|o| {
                    format!(
                        "{:?} lv={} cb={} cm={}",
                        o.scores, o.levels, o.comm_bytes, o.comm_msgs
                    )
                })
                .collect();
            format!("{per_batch:?} {:?}", stats.last())
        }
        // A bounded MCL run through the checkpointed driver.
        "mcl" => {
            let a = int_er(36, 3.0, 203);
            let cfg = saspgemm::apps::mcl::MclConfig {
                max_iters: 5,
                ..Default::default()
            };
            let (clusters, iters, stats) = saspgemm::apps::mcl::mcl_1d_checkpointed(
                comm,
                &a,
                &cfg,
                &Plan1D::default(),
                CacheConfig::unlimited(),
                store,
                "rec.mcl",
            );
            format!("{clusters:?} iters={iters} {stats:?}")
        }
        other => panic!("unknown recovery workload {other}"),
    };
    (logical, format!("{:?}", comm.stats()))
}

const RECOVERY_WORKLOADS: [&str; 3] = ["session", "bc", "mcl"];

/// A checkpointing workload as a [`RecoverableJob`]: the fault plan arms
/// itself for one attempt only, so the restarted attempt runs clean and
/// resumes from whatever the dying attempt checkpointed.
struct RecoveryJob<'a> {
    name: &'static str,
    plan: FaultPlan,
    store: &'a dyn CheckpointStore,
}

impl RecoverableJob for RecoveryJob<'_> {
    type Out = (String, String);
    fn run<C: Comm>(&self, comm: &C, attempt: u32) -> (String, String) {
        let fc = FaultComm::new(comm.split(0, comm.rank()), self.plan.for_attempt(attempt));
        recovery_workload(self.name, &fc, self.store)
    }
}

#[allow(clippy::type_complexity)]
fn recoverable_run(
    backend: Backend,
    name: &'static str,
    plan: &FaultPlan,
    store: &dyn CheckpointStore,
    policy: &RetryPolicy,
    watchdog: Duration,
) -> (Vec<Result<(String, String), RankError>>, RecoveryReport) {
    let job = RecoveryJob {
        name,
        plan: plan.clone(),
        store,
    };
    Universe::new(NRANKS)
        .with_watchdog(Some(watchdog))
        .run_recoverable(backend, policy, &job)
}

/// A fresh on-disk store whose path the procs children inherit through
/// the fork (created in the parent *before* the launch).
fn fresh_file_store(label: &str) -> (std::path::PathBuf, FileStore) {
    let dir = std::env::temp_dir().join(format!("sa_recover_{label}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FileStore::new(&dir).expect("create checkpoint dir");
    (dir, store)
}

/// In-memory checkpoints for the in-process backends, per-rank files for
/// real processes (a `MemStore` clone in a forked child would be invisible
/// to the parent and to respawned ranks).
fn make_store(
    backend: Backend,
    label: &str,
) -> (Box<dyn CheckpointStore>, Option<std::path::PathBuf>) {
    if backend == Backend::Procs {
        let (dir, store) = fresh_file_store(label);
        (Box::new(store), Some(dir))
    } else {
        (Box::new(MemStore::new()), None)
    }
}

/// The recovery matrix: every checkpointing workload × every fault shape
/// the backend can exhibit, each cell asserting the recovered output is
/// identical to the fault-free run and the restart count stays within
/// the policy. A recovered run must also clean up its checkpoints.
fn assert_recovery_matrix(backend: Backend) {
    quiet_expected_panics();
    let policy = RetryPolicy::new(2, Duration::from_millis(5));
    for name in RECOVERY_WORKLOADS {
        let (clean_store, clean_dir) = make_store(backend, &format!("clean_{name}"));
        let (clean, clean_rep) = recoverable_run(
            backend,
            name,
            &FaultPlan::none(),
            clean_store.as_ref(),
            &policy,
            Duration::from_secs(60),
        );
        assert!(
            clean_rep.recovered && clean_rep.restarts == 0,
            "{name}: fault-free run restarted: {clean_rep:?}"
        );
        let clean: Vec<String> = clean
            .iter()
            .enumerate()
            .map(|(r, o)| {
                o.as_ref()
                    .unwrap_or_else(|e| panic!("{name}: fault-free rank {r} failed: {e:?}"))
                    .0
                    .clone()
            })
            .collect();

        // (shape, plan armed for attempt 0 only, watchdog). The straggler
        // cell runs under a watchdog shorter than the injected delay, so
        // the stall surfaces as a typed `Timeout` that triggers a restart.
        let mut shapes: Vec<(&str, FaultPlan, Duration)> = vec![
            (
                "abort0",
                FaultPlan::abort_at(VICTIM, 0).on_attempt(0),
                Duration::from_secs(60),
            ),
            (
                "straggler",
                FaultPlan::delay_at(VICTIM, 3, Duration::from_secs(2)).on_attempt(0),
                Duration::from_millis(500),
            ),
        ];
        if backend == Backend::Procs {
            shapes.push((
                "sigkill",
                FaultPlan::kill_at(VICTIM, 12).on_attempt(0),
                Duration::from_secs(60),
            ));
        }
        for (shape, plan, watchdog) in shapes {
            let (store, dir) = make_store(backend, &format!("{shape}_{name}"));
            let (out, report) =
                recoverable_run(backend, name, &plan, store.as_ref(), &policy, watchdog);
            assert!(
                report.recovered,
                "{name}/{shape}: not recovered: {report:?}"
            );
            assert!(
                report.restarts <= policy.max_restarts,
                "{name}/{shape}: restarts exceeded the policy: {report:?}"
            );
            if shape != "straggler" {
                // Aborts and SIGKILLs always fail attempt 0; a straggler
                // may or may not trip the watchdog depending on backend
                // scheduling, so only the bound is asserted there.
                assert!(
                    report.restarts >= 1,
                    "{name}/{shape}: the injected fault never fired: {report:?}"
                );
            }
            for (r, o) in out.iter().enumerate() {
                let got = &o
                    .as_ref()
                    .unwrap_or_else(|e| {
                        panic!("{name}/{shape}: rank {r} failed after recovery: {e:?}")
                    })
                    .0;
                assert_eq!(
                    got, &clean[r],
                    "{name}/{shape}: rank {r}'s recovered output diverged from the fault-free run"
                );
            }
            if let Some(d) = dir {
                let leftover = std::fs::read_dir(&d).map(|it| it.count()).unwrap_or(0);
                assert_eq!(
                    leftover, 0,
                    "{name}/{shape}: recovered run left checkpoints behind"
                );
                let _ = std::fs::remove_dir_all(d);
            }
        }
        if let Some(d) = clean_dir {
            let _ = std::fs::remove_dir_all(d);
        }
    }
}

#[test]
fn recovery_matrix_sim() {
    assert_recovery_matrix(Backend::Sim);
}

#[test]
fn recovery_matrix_threads() {
    assert_recovery_matrix(Backend::Threads);
}

#[test]
fn recovery_matrix_procs() {
    assert_recovery_matrix(Backend::Procs);
}

/// The PR's flagship acceptance test. A rank is destroyed by `SIGKILL`
/// mid-iteration under the procs backend; `run_recoverable` respawns the
/// full rank set and the job resumes from its per-rank file checkpoints.
/// Asserted bit-identical:
/// * the recovered logical output vs a fault-free run from an empty store;
/// * the recovered run (output *and* final per-rank `CommStats`, i.e. the
///   post-restart segment) vs a fault-free run resumed from the exact
///   checkpoints the killed attempt left behind — restart adds nothing
///   and loses nothing beyond re-executing the interrupted iteration.
#[test]
fn sigkilled_procs_job_recovers_bit_identical_via_run_recoverable() {
    quiet_expected_panics();
    let kill = FaultPlan::kill_at(VICTIM, 18).on_attempt(0);
    let policy = RetryPolicy::new(2, Duration::from_millis(5));
    let watchdog = Duration::from_secs(60);

    // Fault-free reference from an empty store.
    let (dir_clean, store_clean) = fresh_file_store("flagship_clean");
    let (clean, clean_rep) = recoverable_run(
        Backend::Procs,
        "mcl",
        &FaultPlan::none(),
        &store_clean,
        &policy,
        watchdog,
    );
    assert!(clean_rep.recovered && clean_rep.restarts == 0);

    // The kill alone (no restarts budgeted): the job dies mid-iteration
    // and leaves its checkpoints behind.
    let (dir_partial, store_partial) = fresh_file_store("flagship_partial");
    let (dead, dead_rep) = recoverable_run(
        Backend::Procs,
        "mcl",
        &kill,
        &store_partial,
        &RetryPolicy::no_restarts(),
        watchdog,
    );
    assert!(!dead_rep.recovered, "the SIGKILL plan did not fire");
    assert!(dead.iter().any(|o| o.is_err()));
    let leftovers = std::fs::read_dir(&dir_partial)
        .map(|it| it.count())
        .unwrap_or(0);
    assert!(
        leftovers > 0,
        "SIGKILL landed before the first checkpoint — not mid-iteration; move the fault later"
    );

    // Fault-free continuation from those exact checkpoints: what the
    // recovered run's post-restart segment must be bit-identical to.
    let (cont, cont_rep) = recoverable_run(
        Backend::Procs,
        "mcl",
        &FaultPlan::none(),
        &store_partial,
        &RetryPolicy::no_restarts(),
        watchdog,
    );
    assert!(cont_rep.recovered, "continuation failed: {cont_rep:?}");

    // The real thing: kill and recover end to end.
    let (dir_rec, store_rec) = fresh_file_store("flagship_recover");
    let (rec, rec_rep) =
        recoverable_run(Backend::Procs, "mcl", &kill, &store_rec, &policy, watchdog);
    assert!(rec_rep.recovered, "not recovered: {rec_rep:?}");
    assert!(
        rec_rep.restarts >= 1,
        "RecoveryReport must record the restart: {rec_rep:?}"
    );
    assert_eq!(rec_rep.history.len(), rec_rep.restarts as usize);

    for r in 0..NRANKS {
        let rec_r = rec[r]
            .as_ref()
            .unwrap_or_else(|e| panic!("rank {r}: {e:?}"));
        let clean_r = clean[r].as_ref().unwrap();
        let cont_r = cont[r].as_ref().unwrap();
        assert_eq!(
            rec_r.0, clean_r.0,
            "rank {r}: recovered output diverged from the fault-free run"
        );
        assert_eq!(
            rec_r, cont_r,
            "rank {r}: post-restart segment (output + CommStats) diverged from the fault-free continuation"
        );
    }
    // A recovered run cleans up its checkpoints.
    assert_eq!(
        std::fs::read_dir(&dir_rec)
            .map(|it| it.count())
            .unwrap_or(0),
        0
    );
    for d in [dir_clean, dir_partial, dir_rec] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// Zero-fault neutrality of the recovery wrapper itself: one pass through
/// `run_recoverable` with no faults must be byte-identical to `try_run` on
/// the conformance surface (results + metered traffic), with a trivial
/// report — on every backend.
#[test]
fn zero_fault_run_recoverable_is_byte_identical_to_try_run() {
    struct PlainJob(&'static str);
    impl RecoverableJob for PlainJob {
        type Out = String;
        fn run<C: Comm>(&self, comm: &C, _attempt: u32) -> String {
            workload(self.0, comm)
        }
    }
    let u = universe();
    let policy = RetryPolicy::no_restarts();
    let trivial = RecoveryReport {
        attempts: 1,
        restarts: 0,
        recovered: true,
        history: vec![],
    };
    for name in WORKLOADS {
        let (rec, report) = u.run_recoverable(Backend::Sim, &policy, &PlainJob(name));
        let bare = u.try_launch::<Serial, _, _>(|comm| workload(name, comm));
        assert_eq!(
            rec, bare,
            "{name}: run_recoverable perturbed the serial backend"
        );
        assert_eq!(report, trivial, "{name}: zero-fault report not trivial");
        let (rec_t, report_t) = u.run_recoverable(Backend::Threads, &policy, &PlainJob(name));
        let bare_t = u.try_launch::<Threads, _, _>(|comm| workload(name, comm));
        assert_eq!(
            rec_t, bare_t,
            "{name}: run_recoverable perturbed the threads backend"
        );
        assert_eq!(report_t, trivial, "{name}: zero-fault report not trivial");
    }
    let (rec_p, report_p) = u.run_recoverable(Backend::Procs, &policy, &PlainJob("1d"));
    let bare_p = u.try_run_procs(|comm| workload("1d", comm));
    assert_eq!(
        rec_p, bare_p,
        "1d: run_recoverable perturbed the procs backend"
    );
    assert_eq!(report_p, trivial, "1d: zero-fault report not trivial");
}

/// Seeded fault + recovery replay: the same seeded plan armed for attempt
/// 0 must produce the same `RecoveryReport` (restart count *and* per-rank
/// error history) and the same recovered output, run after run, on the
/// deterministic serial backend. `SA_FAULT_SEED` pins one seed (the CI
/// replay job runs one seed per matrix leg).
#[test]
fn seeded_kill_then_recover_is_replayable() {
    quiet_expected_panics();
    let policy = RetryPolicy::new(2, Duration::from_millis(2));
    for seed in fault_seeds() {
        let plan = FaultPlan::seeded(seed, NRANKS, 8).on_attempt(0);
        let run = || {
            let store = MemStore::new();
            let out = recoverable_run(
                Backend::Sim,
                "session",
                &plan,
                &store,
                &policy,
                Duration::from_secs(60),
            );
            assert!(
                store.is_empty(),
                "seed {seed}: recovered run left checkpoints behind"
            );
            out
        };
        let (o1, r1) = run();
        let (o2, r2) = run();
        assert!(r1.recovered, "seed {seed}: not recovered: {r1:?}");
        assert!(
            r1.restarts >= 1,
            "seed {seed}: seeded abort never fired: {r1:?}"
        );
        assert_eq!(r1, r2, "seed {seed}: recovery report not replayable");
        assert_eq!(o1, o2, "seed {seed}: recovered output not replayable");
    }
}

// ---------------------------------------------------------------------------
// Hostile networks (PR 9): seeded frame-level loss under ProcComm's
// ack/retransmit layer, missed-heartbeat liveness, and checkpoint-integrity
// fallback — the transport may drop, corrupt, duplicate, or go silent, and
// the job must still either complete bit-identically or fail typed.
// ---------------------------------------------------------------------------

/// Run `name` on the procs backend with a frame-level fault plan armed on
/// the launching thread (forked children inherit it).
fn lossy_run_procs(name: &'static str, plan: &FaultPlan) -> Vec<Result<String, RankError>> {
    let _armed = arm_frame_plan(plan);
    universe().try_run_procs(|comm| workload(name, comm))
}

/// Seeded frame drop / corrupt / duplicate plans (5% of data frames) on
/// the procs backend: every run must complete with results and metered
/// traffic bit-identical to the fault-free run — drops are retransmitted,
/// duplicates deduped by sequence number, and corrupted frames detected by
/// CRC (logged, then recovered exactly like a loss). Zero
/// silent-wrong-answer outcomes across the matrix.
#[test]
fn seeded_lossy_transport_completes_bit_identical_procs() {
    quiet_expected_panics();
    for name in ["1d", "session"] {
        let clean: Vec<String> = universe()
            .try_run_procs(|comm| workload(name, comm))
            .into_iter()
            .enumerate()
            .map(|(r, o)| o.unwrap_or_else(|e| panic!("{name}: clean rank {r} failed: {e:?}")))
            .collect();
        for seed in fault_seeds().into_iter().take(2) {
            for (mode, plan) in [
                ("drop", FaultPlan::seeded_lossy(seed, 50, 0, 0)),
                ("corrupt", FaultPlan::seeded_lossy(seed, 0, 50, 0)),
                ("duplicate", FaultPlan::seeded_lossy(seed, 0, 0, 50)),
            ] {
                let out = lossy_run_procs(name, &plan);
                for (r, o) in out.iter().enumerate() {
                    let got = o.as_ref().unwrap_or_else(|e| {
                        panic!("{name}/{mode} seed {seed}: rank {r} failed: {e:?}")
                    });
                    assert_eq!(
                        got, &clean[r],
                        "{name}/{mode} seed {seed}: rank {r} diverged from the fault-free run"
                    );
                }
            }
        }
    }
}

/// Satellite: a `drop_frame_at` plan retransmits the *identical* frame
/// sequence across two runs. The workload is pure send/recv (no windows,
/// so each rank's droppable-frame order is deterministic), and the
/// per-rank retransmit logs — (destination, sequence) pairs — must match
/// run for run, with the dropped frames accounted for.
#[test]
fn dropped_frames_retransmit_identically_across_runs() {
    quiet_expected_panics();
    let plan = FaultPlan::drop_frame_at(0, 2).with_frame_fault(saspgemm::mpisim::FrameFaultRule {
        rank: 1,
        at_frame: 1,
        fault: saspgemm::mpisim::FrameFault::Drop,
    });
    let run = || {
        let _armed = arm_frame_plan(&plan);
        universe().try_run_procs(|comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            let mut acc = 0u64;
            for round in 0..4u64 {
                comm.send_vec(next, round, vec![comm.rank() as u64 * 100 + round]);
                acc = acc.wrapping_mul(31) + comm.recv_vec::<u64>(prev, round)[0];
            }
            // The barrier orders the log read after every retransmission:
            // a rank downstream of a dropped frame cannot reach the barrier
            // until the resend lands, and the sweeper logs before writing.
            comm.barrier();
            let mut log = comm.retransmit_log();
            log.sort_unstable();
            (acc, log)
        })
    };
    let first = run();
    let second = run();
    for (r, (a, b)) in first.iter().zip(&second).enumerate() {
        let a = a.as_ref().unwrap_or_else(|e| panic!("rank {r}: {e:?}"));
        let b = b.as_ref().unwrap_or_else(|e| panic!("rank {r}: {e:?}"));
        assert_eq!(a.0, b.0, "rank {r}: results diverged across runs");
        assert_eq!(
            a.1, b.1,
            "rank {r}: retransmitted frame sequence not replayable"
        );
    }
    // the two dropped frames were really retransmitted, on the right ranks
    let logs: Vec<_> = first.iter().map(|o| &o.as_ref().unwrap().1).collect();
    assert!(!logs[0].is_empty(), "rank 0's dropped frame never resent");
    assert!(!logs[1].is_empty(), "rank 1's dropped frame never resent");
    assert!(
        logs[2].is_empty() && logs[3].is_empty(),
        "spurious retransmits"
    );
}

/// Peer liveness: a wedged (not dead) peer stops heartbeating; under
/// `SA_HEARTBEAT_SECS` semantics every survivor must fail typed
/// `PeerFailed` naming it via missed heartbeats — long before the 60 s
/// stall watchdog, which is exactly what distinguishes the two deadlines.
#[test]
fn wedged_peer_is_detected_by_missed_heartbeats_procs() {
    quiet_expected_panics();
    let started = std::time::Instant::now();
    let out = Universe::new(NRANKS)
        .with_watchdog(Some(Duration::from_secs(60)))
        .with_heartbeat(Some(Duration::from_millis(250)))
        .try_run_procs(|comm| {
            comm.barrier();
            if comm.rank() == VICTIM {
                // model a wedge: the process lives but goes silent
                mute_heartbeats();
                std::thread::sleep(Duration::from_secs(3));
            }
            // park in a recv nobody serves: only liveness detection can
            // terminate the job before the watchdog
            let v: Vec<u64> = comm.recv_vec((comm.rank() + 1) % comm.size(), 999);
            format!("{v:?}")
        });
    let elapsed = started.elapsed();
    for (r, o) in out.iter().enumerate() {
        match o {
            Err(RankError::Comm(CommError::PeerFailed { rank, .. })) if r != VICTIM => {
                assert_eq!(
                    *rank, VICTIM,
                    "rank {r} blamed rank {rank} instead of the silent peer"
                );
            }
            Err(RankError::Comm(_)) if r == VICTIM => {}
            other => panic!("rank {r}: expected typed heartbeat fallout, got {other:?}"),
        }
    }
    assert!(
        elapsed < Duration::from_secs(30),
        "liveness detection took {elapsed:?} — the watchdog must not be what fired"
    );
}

/// Checkpoint integrity end to end: a SIGKILLed attempt leaves per-rank
/// checkpoints behind; one rank's slot is then corrupted on disk. The
/// resumed run must (a) detect the damage typed and quarantine the file,
/// (b) collapse to a unanimous fresh start via `agreed_step` (the damaged
/// rank reports "nothing durable", so nobody resumes ahead), and (c)
/// produce output bit-identical to a fault-free run from an empty store.
#[test]
fn corrupt_checkpoint_slot_triggers_unanimous_fresh_start_procs() {
    quiet_expected_panics();
    let policy = RetryPolicy::no_restarts();
    let watchdog = Duration::from_secs(60);

    // fault-free reference from an empty store
    let (dir_clean, store_clean) = fresh_file_store("ckptcorrupt_clean");
    let (clean, clean_rep) = recoverable_run(
        Backend::Procs,
        "mcl",
        &FaultPlan::none(),
        &store_clean,
        &policy,
        watchdog,
    );
    assert!(clean_rep.recovered && clean_rep.restarts == 0);

    // a killed attempt leaves mid-run checkpoints behind
    let (dir, store) = fresh_file_store("ckptcorrupt");
    let (_, dead_rep) = recoverable_run(
        Backend::Procs,
        "mcl",
        &FaultPlan::kill_at(VICTIM, 18).on_attempt(0),
        &store,
        &policy,
        watchdog,
    );
    assert!(!dead_rep.recovered, "the SIGKILL plan did not fire");

    // corrupt exactly one rank's slot: flip a payload byte on disk
    let slot = std::fs::read_dir(&dir)
        .expect("checkpoint dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .expect("the killed attempt left no checkpoint to corrupt");
    let mut raw = std::fs::read(&slot).expect("readable slot");
    assert!(raw.len() > 28, "slot smaller than its header");
    let last = raw.len() - 1;
    raw[last] ^= 0x10;
    std::fs::write(&slot, &raw).expect("rewrite slot");

    // resume against the damaged store: unanimous fresh start, output
    // identical to the fault-free run
    let (resumed, resumed_rep) = recoverable_run(
        Backend::Procs,
        "mcl",
        &FaultPlan::none(),
        &store,
        &policy,
        watchdog,
    );
    assert!(
        resumed_rep.recovered,
        "fresh-start recovery failed: {resumed_rep:?}"
    );
    for (r, o) in resumed.iter().enumerate() {
        let got = &o
            .as_ref()
            .unwrap_or_else(|e| panic!("rank {r} failed after fresh start: {e:?}"))
            .0;
        assert_eq!(
            got,
            &clean[r].as_ref().unwrap().0,
            "rank {r}: fresh-start output diverged from the fault-free run"
        );
    }
    // forensics: the damaged file was quarantined, not deleted or reused
    let quarantined = std::fs::read_dir(&dir)
        .expect("checkpoint dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .any(|p| p.extension().is_some_and(|x| x == "quarantine"));
    assert!(quarantined, "corrupt slot was not quarantined");
    for d in [dir_clean, dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

// ---------------------------------------------------------------------------
// Faults inside an in-flight prefetch (PR 10): the overlap engine stages
// fetches on a background path while the foreground computes, so a fault
// can now land while a get is airborne. The matrix below re-runs the
// abort / SIGKILL / seeded-lossy shapes with the prefetcher forced on:
// every survivor must still fail typed `PeerFailed` naming the victim (a
// torn staging buffer would instead surface as a wrong fingerprint, a
// hang, or an untyped panic out of the fetch thread), lossy transports
// must still complete bit-identically, and `run_recoverable` must resume
// a killed overlapped session to the fault-free answer.
// ---------------------------------------------------------------------------

/// The staged workloads with the prefetch engine forced on (explicit
/// config — env vars are racy in-process). Same fingerprint discipline as
/// [`workload`].
fn overlap_workload<C: Comm>(name: &str, comm: &C) -> String {
    let on = PrefetchConfig::on();
    match name {
        "1d" => {
            let a = int_er(48, 3.0, 101);
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let db = da.clone();
            let ws = SpgemmWorkspace::new();
            let before = comm.stats();
            let (c, rep) = spgemm_1d_overlap_ws(comm, &da, &db, &Plan1D::default(), on, &ws);
            format!(
                "{} {:?} fetched={}",
                fp(&c.into_local_csc()),
                comm.stats() - before,
                rep.fetched_bytes
            )
        }
        "2d" => {
            let a = int_er(40, 3.0, 102);
            let b = int_er(40, 2.5, 103);
            let grid = Grid2D::new(comm, 2, 2);
            let da = DistMat2D::from_global(&grid, &a);
            let db = DistMat2D::from_global(&grid, &b);
            let ws = SpgemmWorkspace::new();
            let before = comm.stats();
            let (c, rep) = spgemm_summa_2d_sa_ws_cfg::<_, PlusTimes<f64>>(
                comm,
                &grid,
                &da,
                &db,
                FetchMode::Block(4),
                on,
                &ws,
            );
            format!(
                "{} {:?} shipped={}",
                fp_opt(&c.gather(comm, &grid)),
                comm.stats() - before,
                rep.b_shipped_bytes
            )
        }
        "session" => {
            let a = int_er(60, 3.0, 106);
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let db = da.clone();
            let mut session = SpgemmSession::create(
                comm,
                da.clone(),
                Plan1D::default(),
                CacheConfig::unlimited(),
            );
            session.set_prefetch(on);
            let (c1, r1) = session.multiply(comm, &db);
            let a2 = a.map(|v| v + 1.0);
            let invalidated = session.update_a(comm, DistMat1D::from_global(comm, &a2, &offsets));
            let (c2, r2) = session.multiply(comm, &db);
            format!(
                "{} {} inv={} fresh=({},{}) hit=({},{})",
                fp(&c1.into_local_csc()),
                fp(&c2.into_local_csc()),
                invalidated,
                r1.fresh_bytes,
                r2.fresh_bytes,
                r1.cache_hit_bytes,
                r2.cache_hit_bytes
            )
        }
        other => panic!("unknown overlap workload {other}"),
    }
}

const OVERLAP_WORKLOADS: [&str; 3] = ["1d", "2d", "session"];

/// The abort matrix with overlap on: a victim dying while peers have
/// staged gets in flight must produce exactly the same typed outcome as
/// the inline matrix — victim panics "injected fault", every survivor
/// fails `PeerFailed` naming it, nobody hangs in the fetch thread and
/// nobody reports success off a torn buffer.
fn assert_overlap_abort_matrix<M: Mode>(at_op: u64) {
    quiet_expected_panics();
    for name in OVERLAP_WORKLOADS {
        let plan = FaultPlan::abort_at(VICTIM, at_op);
        let out = universe().try_launch::<M, _, _>(|comm| {
            let fc = FaultComm::new(comm.split(0, comm.rank()), plan.clone());
            overlap_workload(name, &fc)
        });
        if std::env::var("SA_DEBUG_OVERLAP_FAULTS").is_ok() {
            for (r, o) in out.iter().enumerate() {
                eprintln!("DEBUG {name} at_op={at_op} rank {r}: {o:?}");
            }
        }
        assert_eq!(out.len(), NRANKS);
        for (r, o) in out.iter().enumerate() {
            match o {
                Ok(res) => panic!(
                    "overlap {name} at_op={at_op}: rank {r} finished ({res}) despite the injected fault"
                ),
                Err(RankError::Panic { summary }) => {
                    assert_eq!(
                        r, VICTIM,
                        "overlap {name} at_op={at_op}: non-victim rank {r} panicked: {summary}"
                    );
                    assert!(
                        summary.contains("injected fault"),
                        "overlap {name} at_op={at_op}: victim died of something else: {summary}"
                    );
                }
                Err(RankError::Comm(CommError::PeerFailed { rank, primitive })) => {
                    assert_ne!(
                        r, VICTIM,
                        "overlap {name} at_op={at_op}: victim saw a peer failure"
                    );
                    assert_eq!(
                        *rank, VICTIM,
                        "overlap {name} at_op={at_op}: rank {r} blamed rank {rank} (in {primitive}) instead of the victim"
                    );
                }
                Err(e) => {
                    panic!("overlap {name} at_op={at_op}: rank {r} failed untyped: {e:?}")
                }
            }
        }
    }
}

#[test]
fn overlap_abort_mid_prefetch_fails_every_survivor_typed_serial() {
    // serial degradation: the engine issues in order on the main thread
    assert_overlap_abort_matrix::<Serial>(5);
    assert_overlap_abort_matrix::<Serial>(8);
}

#[test]
fn overlap_abort_mid_prefetch_fails_every_survivor_typed_threads() {
    // genuinely concurrent: the abort lands while fetch threads are live
    assert_overlap_abort_matrix::<Threads>(5);
    assert_overlap_abort_matrix::<Threads>(8);
}

#[test]
fn overlap_abort_mid_prefetch_fails_every_survivor_typed_procs() {
    quiet_expected_panics();
    for at_op in [5u64, 8] {
        for name in OVERLAP_WORKLOADS {
            let plan = FaultPlan::abort_at(VICTIM, at_op);
            let out = universe().try_run_procs(|comm| {
                let fc = FaultComm::new(comm.split(0, comm.rank()), plan.clone());
                overlap_workload(name, &fc)
            });
            for (r, o) in out.iter().enumerate() {
                match o {
                    Err(RankError::Panic { summary }) if r == VICTIM => assert!(
                        summary.contains("injected fault"),
                        "overlap {name}: victim died of something else: {summary}"
                    ),
                    Err(RankError::Comm(CommError::PeerFailed { rank, .. })) if r != VICTIM => {
                        assert_eq!(
                            *rank, VICTIM,
                            "overlap {name} at_op={at_op}: rank {r} blamed rank {rank}"
                        );
                    }
                    other => panic!(
                        "overlap {name} at_op={at_op}: rank {r} expected typed fallout, got {other:?}"
                    ),
                }
            }
        }
    }
}

/// SIGKILL with GetResp frames potentially airborne: the victim vanishes
/// without unwinding while peers hold staged gets against its window.
/// Survivors' fetch threads must be woken by the dead-socket detection and
/// fail typed, never hang the rendezvous.
#[test]
fn overlap_sigkill_mid_prefetch_fails_every_survivor_typed_procs() {
    quiet_expected_panics();
    let out = universe().try_run_procs(|comm| {
        if comm.rank() == VICTIM {
            kill_self_with_sigkill();
        }
        overlap_workload("1d", comm)
    });
    assert_eq!(out.len(), NRANKS);
    for (r, o) in out.iter().enumerate() {
        match o {
            Err(RankError::Panic { summary }) if r == VICTIM => assert!(
                summary.contains("signal 9"),
                "victim's corpse misclassified: {summary}"
            ),
            Err(RankError::Comm(CommError::PeerFailed { rank, .. })) if r != VICTIM => {
                assert_eq!(*rank, VICTIM, "rank {r} blamed rank {rank} for the SIGKILL");
            }
            other => panic!("rank {r}: expected typed SIGKILL fallout, got {other:?}"),
        }
    }
}

/// Seeded frame loss under an active prefetcher: drops, corruptions, and
/// duplicates now hit GetResp frames feeding background staging buffers.
/// The ack/retransmit layer must still deliver every run bit-identical to
/// the fault-free overlapped run — a torn or double-filled staging buffer
/// cannot hide from the fingerprint.
#[test]
fn overlap_seeded_lossy_transport_completes_bit_identical_procs() {
    quiet_expected_panics();
    for name in ["1d", "session"] {
        let clean: Vec<String> = universe()
            .try_run_procs(|comm| overlap_workload(name, comm))
            .into_iter()
            .enumerate()
            .map(|(r, o)| {
                o.unwrap_or_else(|e| panic!("overlap {name}: clean rank {r} failed: {e:?}"))
            })
            .collect();
        for seed in fault_seeds().into_iter().take(1) {
            for (mode, plan) in [
                ("drop", FaultPlan::seeded_lossy(seed, 50, 0, 0)),
                ("corrupt", FaultPlan::seeded_lossy(seed, 0, 50, 0)),
                ("duplicate", FaultPlan::seeded_lossy(seed, 0, 0, 50)),
            ] {
                let _armed = arm_frame_plan(&plan);
                let out = universe().try_run_procs(|comm| overlap_workload(name, comm));
                for (r, o) in out.iter().enumerate() {
                    let got = o.as_ref().unwrap_or_else(|e| {
                        panic!("overlap {name}/{mode} seed {seed}: rank {r} failed: {e:?}")
                    });
                    assert_eq!(
                        got, &clean[r],
                        "overlap {name}/{mode} seed {seed}: rank {r} diverged from the fault-free run"
                    );
                }
            }
        }
    }
}

/// Recovery with overlap on: a fault landing mid-prefetch must leave
/// nothing torn in the checkpoints — `run_recoverable` resumes the
/// overlapped session to output bit-identical with the fault-free run, on
/// every backend, within the retry policy.
#[test]
fn overlap_session_recovers_bit_identical_across_backends() {
    quiet_expected_panics();
    let policy = RetryPolicy::new(2, Duration::from_millis(5));
    let watchdog = Duration::from_secs(60);
    for backend in [Backend::Sim, Backend::Threads, Backend::Procs] {
        let label = format!("ov_{}", backend.name());
        let (clean_store, clean_dir) = make_store(backend, &format!("{label}_clean"));
        let (clean, clean_rep) = recoverable_run(
            backend,
            "session_overlap",
            &FaultPlan::none(),
            clean_store.as_ref(),
            &policy,
            watchdog,
        );
        assert!(
            clean_rep.recovered && clean_rep.restarts == 0,
            "overlap/{label}: fault-free run restarted: {clean_rep:?}"
        );
        let plan = if backend == Backend::Procs {
            FaultPlan::kill_at(VICTIM, 12).on_attempt(0)
        } else {
            FaultPlan::abort_at(VICTIM, 5).on_attempt(0)
        };
        let (store, dir) = make_store(backend, &format!("{label}_fault"));
        let (out, report) = recoverable_run(
            backend,
            "session_overlap",
            &plan,
            store.as_ref(),
            &policy,
            watchdog,
        );
        assert!(
            report.recovered && report.restarts >= 1,
            "overlap/{label}: fault never fired or never recovered: {report:?}"
        );
        for (r, o) in out.iter().enumerate() {
            let got = &o
                .as_ref()
                .unwrap_or_else(|e| {
                    panic!("overlap/{label}: rank {r} failed after recovery: {e:?}")
                })
                .0;
            let want = &clean[r].as_ref().unwrap().0;
            assert_eq!(
                got, want,
                "overlap/{label}: rank {r}'s recovered output diverged from the fault-free run"
            );
        }
        for d in [clean_dir, dir].into_iter().flatten() {
            let _ = std::fs::remove_dir_all(d);
        }
    }
}
