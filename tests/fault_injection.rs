//! Fault-injection acceptance suite (PR 6): the runtime must convert rank
//! deaths into *typed, attributed, bounded* failures instead of hangs.
//!
//! The matrix: every distributed workload (1D / 2D / 3D sparsity-aware
//! multiply, a cached `SpgemmSession` multiply + `update_a`, and the
//! `spgemm_auto` tuner pick) × every fault shape (abort at the victim's
//! first communication call, abort mid-stream inside a collective's
//! constituent point-to-point calls, and a straggler delay) × all three
//! backends (`launch::<Serial>` / `launch::<Threads>` /
//! `try_run_procs`). In every abort cell the job must terminate within
//! the watchdog deadline with the victim reporting its own panic and
//! **every** survivor reporting [`CommError::PeerFailed`] naming the
//! victim.
//!
//! The `procs` backend adds the fault shapes only real processes can
//! exhibit: a rank destroyed by `SIGKILL` mid-job (no unwinding, no abort
//! broadcast — survivors detect the dead socket, the parent classifies
//! the corpse from `waitpid`), and a cross-process deadlock where each
//! process's *own* watchdog must convert the stall into a typed
//! [`CommError::Timeout`] (unlike in-process backends there is one
//! watchdog per process, so several ranks may time out — see
//! docs/BACKENDS.md's porting log).
//!
//! Plus the two supporting properties:
//! * **wrapper neutrality** — a zero-fault [`FaultComm`] is byte-identical
//!   to the bare backend (same results, same metered traffic), so the
//!   harness measures the runtime, not itself;
//! * **replayability** — the same seeded [`FaultPlan`] yields the same
//!   surviving-rank error set run after run on the serial backend.

use saspgemm::dist::{
    spgemm_1d, spgemm_auto, spgemm_split_3d_sa, spgemm_summa_2d_sa, uniform_offsets, CacheConfig,
    DistMat1D, DistMat2D, DistMat3D, FetchMode, Plan1D, SpgemmSession,
};
use saspgemm::mpisim::{
    kill_self_with_sigkill, Comm, CommError, CostModel, FaultComm, FaultPlan, Grid2D, Grid3D, Mode,
    Primitive, RankError, Serial, Threads, Universe,
};
use saspgemm::sparse::gen::erdos_renyi;
use saspgemm::sparse::Csc;
use std::sync::Once;
use std::time::Duration;

/// Suppress the default panic banner for the panics this suite *plans*
/// (injected faults and the typed `CommError` payloads they trigger on
/// peers); real, unexpected panics still print.
fn quiet_expected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let expected = p.downcast_ref::<CommError>().is_some()
                || p.downcast_ref::<String>()
                    .is_some_and(|s| s.contains("injected fault"))
                || p.downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("injected fault"));
            if !expected {
                default(info);
            }
        }));
    });
}

/// ER matrix with small-integer values, so f64 accumulation is exact and
/// fingerprints compare with `==`.
fn int_er(n: usize, deg: f64, seed: u64) -> Csc<f64> {
    erdos_renyi(n, n, deg, seed).map(|v| (v * 7.0).round() + 1.0)
}

/// Position-weighted checksum of a matrix — order-independent, exact for
/// integer-valued operands.
fn fp(c: &Csc<f64>) -> String {
    let mut sum = 0.0f64;
    for (r, col, v) in c.iter() {
        sum += v * ((3 * r + 5 * col + 7) as f64);
    }
    format!("{}x{} nnz={} sum={}", c.nrows(), c.ncols(), c.nnz(), sum)
}

fn fp_opt(c: &Option<Csc<f64>>) -> String {
    match c {
        Some(c) => fp(c),
        None => "none".to_string(),
    }
}

/// Every workload of the fault matrix, identified by name so one generic
/// driver can sweep them. Returns a wall-clock-free fingerprint (results +
/// metered traffic), so a straggler run must fingerprint identically to a
/// clean one.
fn workload<C: Comm>(name: &str, comm: &C) -> String {
    match name {
        "1d" => {
            let a = int_er(48, 3.0, 101);
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let db = da.clone();
            let before = comm.stats();
            let (c, rep) = spgemm_1d(comm, &da, &db, &Plan1D::default());
            format!(
                "{} {:?} fetched={}",
                fp(&c.into_local_csc()),
                comm.stats() - before,
                rep.fetched_bytes
            )
        }
        "2d" => {
            let a = int_er(40, 3.0, 102);
            let b = int_er(40, 2.5, 103);
            let grid = Grid2D::new(comm, 2, 2);
            let da = DistMat2D::from_global(&grid, &a);
            let db = DistMat2D::from_global(&grid, &b);
            let before = comm.stats();
            let (c, rep) = spgemm_summa_2d_sa(comm, &grid, &da, &db, FetchMode::Block(4));
            format!(
                "{} {:?} shipped={}",
                fp_opt(&c.gather(comm, &grid)),
                comm.stats() - before,
                rep.b_shipped_bytes
            )
        }
        "3d" => {
            let a = int_er(36, 3.0, 104);
            let b = int_er(36, 3.0, 105);
            let grid = Grid3D::new(comm, 2, 1);
            let da = DistMat3D::from_global_split_cols(&grid, &a);
            let db = DistMat3D::from_global_split_rows(&grid, &b);
            let before = comm.stats();
            let (c, rep) = spgemm_split_3d_sa(comm, &grid, &da, &db, FetchMode::Block(4));
            format!(
                "{} {:?} reduced={}",
                fp_opt(&c.gather(comm)),
                comm.stats() - before,
                rep.reduce_bytes
            )
        }
        "session" => {
            let a = int_er(60, 3.0, 106);
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let db = da.clone();
            let mut session = SpgemmSession::create(
                comm,
                da.clone(),
                Plan1D::default(),
                CacheConfig::unlimited(),
            );
            let (c1, r1) = session.multiply(comm, &db);
            let a2 = a.map(|v| v + 1.0);
            let invalidated = session.update_a(comm, DistMat1D::from_global(comm, &a2, &offsets));
            let (c2, r2) = session.multiply(comm, &db);
            format!(
                "{} {} inv={} fresh=({},{}) hit=({},{})",
                fp(&c1.into_local_csc()),
                fp(&c2.into_local_csc()),
                invalidated,
                r1.fresh_bytes,
                r2.fresh_bytes,
                r1.cache_hit_bytes,
                r2.cache_hit_bytes
            )
        }
        "auto" => {
            let a = int_er(48, 3.0, 107);
            let b = int_er(48, 3.0, 108);
            let (c, rep) = spgemm_auto(comm, &a, &b, &CostModel::slingshot());
            format!("{} {:?} {:?}", fp_opt(&c), rep.choice, rep.comm)
        }
        other => panic!("unknown workload {other}"),
    }
}

/// All workloads run on 4 ranks (the 3D case as a 2x2 grid x 1 layer).
const WORKLOADS: [&str; 5] = ["1d", "2d", "3d", "session", "auto"];
const NRANKS: usize = 4;
const VICTIM: usize = 1;

/// A long deadline that only fires if failure propagation itself is
/// broken: a regression hangs for a minute and then fails typed, instead
/// of hanging the suite forever.
fn universe() -> Universe {
    Universe::new(NRANKS).with_watchdog(Some(Duration::from_secs(60)))
}

/// Run `name` with `plan` injected on every rank; return the per-rank
/// outcomes.
fn faulted_run<M: Mode>(name: &'static str, plan: &FaultPlan) -> Vec<Result<String, RankError>> {
    universe().try_launch::<M, _, _>(|comm| {
        let fc = FaultComm::new(comm.split(0, comm.rank()), plan.clone());
        workload(name, &fc)
    })
}

/// The abort half of the matrix: victim dies at `at_op`, every survivor
/// must fail typed, naming the victim.
fn assert_abort_matrix<M: Mode>(at_op: u64) {
    quiet_expected_panics();
    for name in WORKLOADS {
        let plan = FaultPlan::abort_at(VICTIM, at_op);
        let out = faulted_run::<M>(name, &plan);
        assert_eq!(out.len(), NRANKS);
        for (r, o) in out.iter().enumerate() {
            match o {
                Ok(res) => panic!(
                    "{name} at_op={at_op}: rank {r} finished ({res}) despite the injected fault"
                ),
                Err(RankError::Panic { summary }) => {
                    assert_eq!(
                        r, VICTIM,
                        "{name} at_op={at_op}: non-victim rank {r} panicked: {summary}"
                    );
                    assert!(
                        summary.contains("injected fault"),
                        "{name} at_op={at_op}: victim died of something else: {summary}"
                    );
                }
                Err(RankError::Comm(CommError::PeerFailed { rank, primitive })) => {
                    assert_ne!(r, VICTIM, "{name} at_op={at_op}: victim saw a peer failure");
                    assert_eq!(
                        *rank, VICTIM,
                        "{name} at_op={at_op}: rank {r} blamed rank {rank} (in {primitive}) instead of the victim"
                    );
                }
                Err(e) => panic!("{name} at_op={at_op}: rank {r} failed untyped: {e:?}"),
            }
        }
    }
}

#[test]
fn abort_at_first_op_fails_every_survivor_typed_serial() {
    assert_abort_matrix::<Serial>(0);
}

#[test]
fn abort_at_first_op_fails_every_survivor_typed_threads() {
    assert_abort_matrix::<Threads>(0);
}

#[test]
fn abort_mid_collective_fails_every_survivor_typed_serial() {
    assert_abort_matrix::<Serial>(5);
}

#[test]
fn abort_mid_collective_fails_every_survivor_typed_threads() {
    assert_abort_matrix::<Threads>(5);
}

/// The straggler half of the matrix: a delayed rank stalls the job but
/// every rank still completes, with results and metered traffic identical
/// to a clean run.
fn assert_straggler_matrix<M: Mode>() {
    quiet_expected_panics();
    for name in WORKLOADS {
        let clean = faulted_run::<M>(name, &FaultPlan::none());
        let slow = faulted_run::<M>(
            name,
            &FaultPlan::delay_at(VICTIM, 3, Duration::from_millis(30)),
        );
        for (r, (c, s)) in clean.iter().zip(&slow).enumerate() {
            let c = c
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}: clean run failed on rank {r}: {e:?}"));
            let s = s
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}: straggler run failed on rank {r}: {e:?}"));
            assert_eq!(
                c, s,
                "{name}: a straggler changed rank {r}'s results/traffic"
            );
        }
    }
}

#[test]
fn straggler_stalls_but_completes_identically_serial() {
    assert_straggler_matrix::<Serial>();
}

#[test]
fn straggler_stalls_but_completes_identically_threads() {
    assert_straggler_matrix::<Threads>();
}

/// Wrapper neutrality: a zero-fault `FaultComm` must be indistinguishable
/// from the bare backend on the backend-equivalence surface — same
/// results, same metered traffic, per rank, on both backends.
#[test]
fn zero_fault_wrapper_is_byte_identical_to_bare_backend() {
    for name in WORKLOADS {
        let u = universe();
        let bare = u.launch::<Serial, _, _>(|comm| workload(name, comm));
        let wrapped = u.launch::<Serial, _, _>(|comm| {
            workload(
                name,
                &FaultComm::new(comm.split(0, comm.rank()), FaultPlan::none()),
            )
        });
        assert_eq!(
            bare, wrapped,
            "{name}: wrapper perturbed the serial backend"
        );
        let bare_t = u.launch::<Threads, _, _>(|comm| workload(name, comm));
        let wrapped_t = u.launch::<Threads, _, _>(|comm| {
            workload(
                name,
                &FaultComm::new(comm.split(0, comm.rank()), FaultPlan::none()),
            )
        });
        assert_eq!(
            bare_t, wrapped_t,
            "{name}: wrapper perturbed the threads backend"
        );
        assert_eq!(bare, bare_t, "{name}: backends diverged");
    }
}

// ---------------------------------------------------------------------------
// The procs backend: the same matrix across real process boundaries, plus
// the fault shapes only OS processes can exhibit.
// ---------------------------------------------------------------------------

/// [`faulted_run`] on the process-per-rank backend: every rank is a forked
/// OS process, the injected panic unwinds inside the child, and the typed
/// outcome crosses back over a socket.
fn faulted_run_procs(name: &'static str, plan: &FaultPlan) -> Vec<Result<String, RankError>> {
    universe().try_run_procs(|comm| {
        let fc = FaultComm::new(comm.split(0, comm.rank()), plan.clone());
        workload(name, &fc)
    })
}

/// The abort matrix on procs: identical acceptance to the in-process
/// backends — victim panics "injected fault", every survivor fails
/// `PeerFailed` naming the victim (the victim's Abort broadcast, not a
/// guessed-at socket EOF, carries the attribution).
fn assert_abort_matrix_procs(at_op: u64) {
    quiet_expected_panics();
    for name in WORKLOADS {
        let plan = FaultPlan::abort_at(VICTIM, at_op);
        let out = faulted_run_procs(name, &plan);
        assert_eq!(out.len(), NRANKS);
        for (r, o) in out.iter().enumerate() {
            match o {
                Ok(res) => panic!(
                    "{name} at_op={at_op}: rank {r} finished ({res}) despite the injected fault"
                ),
                Err(RankError::Panic { summary }) => {
                    assert_eq!(
                        r, VICTIM,
                        "{name} at_op={at_op}: non-victim rank {r} panicked: {summary}"
                    );
                    assert!(
                        summary.contains("injected fault"),
                        "{name} at_op={at_op}: victim died of something else: {summary}"
                    );
                }
                Err(RankError::Comm(CommError::PeerFailed { rank, primitive })) => {
                    assert_ne!(r, VICTIM, "{name} at_op={at_op}: victim saw a peer failure");
                    assert_eq!(
                        *rank, VICTIM,
                        "{name} at_op={at_op}: rank {r} blamed rank {rank} (in {primitive}) instead of the victim"
                    );
                }
                Err(e) => panic!("{name} at_op={at_op}: rank {r} failed untyped: {e:?}"),
            }
        }
    }
}

#[test]
fn abort_at_first_op_fails_every_survivor_typed_procs() {
    assert_abort_matrix_procs(0);
}

#[test]
fn abort_mid_collective_fails_every_survivor_typed_procs() {
    assert_abort_matrix_procs(5);
}

#[test]
fn straggler_stalls_but_completes_identically_procs() {
    quiet_expected_panics();
    for name in WORKLOADS {
        let clean = faulted_run_procs(name, &FaultPlan::none());
        let slow = faulted_run_procs(
            name,
            &FaultPlan::delay_at(VICTIM, 3, Duration::from_millis(30)),
        );
        for (r, (c, s)) in clean.iter().zip(&slow).enumerate() {
            let c = c
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}: clean procs run failed on rank {r}: {e:?}"));
            let s = s.as_ref().unwrap_or_else(|e| {
                panic!("{name}: straggler procs run failed on rank {r}: {e:?}")
            });
            assert_eq!(
                c, s,
                "{name}: a straggler changed rank {r}'s results/traffic"
            );
        }
    }
}

/// The fault no in-process backend can model: a rank destroyed by
/// `SIGKILL`. Nothing unwinds, no Abort is broadcast — survivors must
/// detect the dead sockets (EOF without a Bye poisons the job naming the
/// vanished peer) and the parent must classify the corpse from `waitpid`.
#[test]
fn sigkill_mid_job_fails_every_survivor_typed_procs() {
    quiet_expected_panics();
    let out = universe().try_run_procs(|comm| {
        if comm.rank() == VICTIM {
            kill_self_with_sigkill();
        }
        workload("1d", comm)
    });
    assert_eq!(out.len(), NRANKS);
    for (r, o) in out.iter().enumerate() {
        match o {
            Err(RankError::Panic { summary }) if r == VICTIM => assert!(
                summary.contains("signal 9"),
                "victim's corpse misclassified: {summary}"
            ),
            Err(RankError::Comm(CommError::PeerFailed { rank, .. })) if r != VICTIM => {
                assert_eq!(*rank, VICTIM, "rank {r} blamed rank {rank} for the SIGKILL");
            }
            other => panic!("rank {r}: expected typed SIGKILL fallout, got {other:?}"),
        }
    }
}

/// Cross-process stall detection: every process deadlocks in a circular
/// recv that no one serves; each process's own watchdog must fire and
/// convert the stall into a typed `Timeout` (or `PeerFailed`, if a peer's
/// abort broadcast lands first — with one watchdog per process, *several*
/// ranks may time out, unlike the in-process backends' single shared
/// scheduler; the porting log in docs/BACKENDS.md records this semantic
/// difference).
#[test]
fn cross_process_deadlock_times_out_typed_procs() {
    quiet_expected_panics();
    let out = Universe::new(NRANKS)
        .with_watchdog(Some(Duration::from_secs(2)))
        .try_run_procs(|comm| {
            let v: Vec<u64> = comm.recv_vec((comm.rank() + 1) % comm.size(), 999);
            format!("{v:?}") // never reached: tag 999 is never sent
        });
    let mut timeouts = 0;
    for (r, o) in out.iter().enumerate() {
        match o {
            Err(RankError::Comm(CommError::Timeout { primitive, .. })) => {
                timeouts += 1;
                assert_eq!(*primitive, Primitive::Recv, "rank {r} timed out elsewhere");
            }
            Err(RankError::Comm(CommError::PeerFailed { .. })) => {}
            other => panic!("rank {r}: expected Timeout or PeerFailed, got {other:?}"),
        }
    }
    assert!(timeouts >= 1, "no process watchdog fired: {out:?}");
}

/// Replayability: the same seeded plan must produce the same
/// surviving-rank error set on the deterministic serial backend, run
/// after run — what makes a red fault run debuggable.
#[test]
fn seeded_fault_runs_are_replayable() {
    quiet_expected_panics();
    for seed in [1u64, 7, 99] {
        let plan = FaultPlan::seeded(seed, NRANKS, 8);
        let victim = plan.victim().expect("seeded plan kills someone");
        let shape = |out: &[Result<String, RankError>]| -> Vec<String> {
            out.iter()
                .map(|o| match o {
                    Ok(_) => "ok".to_string(),
                    Err(RankError::Panic { .. }) => "panic".to_string(),
                    Err(RankError::Comm(CommError::PeerFailed { rank, .. })) => {
                        format!("peer-failed({rank})")
                    }
                    Err(e) => format!("{e:?}"),
                })
                .collect()
        };
        let first = shape(&faulted_run::<Serial>("1d", &plan));
        let second = shape(&faulted_run::<Serial>("1d", &plan));
        assert_eq!(first, second, "seed {seed}: fault run not replayable");
        assert_eq!(
            first[victim], "panic",
            "seed {seed}: victim {victim} survived"
        );
    }
}
