//! Scheduling must never change results: flop-balanced work splitting
//! produces bit-identical CSC output to fixed chunking across kernels
//! (heap/hash/SPA/hybrid), semirings, thread counts, and the degenerate
//! shapes (empty operands, a single heavy column, long empty runs).

use proptest::prelude::*;
use saspgemm::sparse::semiring::{OrAnd, PlusTimes, Semiring};
use saspgemm::sparse::spgemm::{spgemm_with, Kernel, Schedule, SpgemmWorkspace};
use saspgemm::sparse::{Coo, Csc};

const KERNELS: [Kernel; 4] = [Kernel::Heap, Kernel::Hash, Kernel::Spa, Kernel::Hybrid];
const SCHEDULES: [Schedule; 4] = [
    Schedule::Fixed(256),
    Schedule::Fixed(7),
    Schedule::Fixed(1),
    Schedule::FlopBalanced,
];

fn arb_matrix(nrows: usize, ncols: usize, nnz: usize) -> impl Strategy<Value = Csc<f64>> {
    proptest::collection::vec((0..nrows as u32, 0..ncols as u32, -3i32..=3), nnz).prop_map(
        move |tr| {
            let mut coo = Coo::new(nrows, ncols);
            for (r, c, v) in tr {
                if v != 0 {
                    coo.push(r, c, v as f64);
                }
            }
            coo.to_csc_with(|a, b| a + b).filter(|_, _, v| v != 0.0)
        },
    )
}

/// All schedules, under `threads` workers, must agree bit-for-bit with the
/// single-threaded fixed-chunk baseline.
fn assert_schedule_invariant<S: Semiring>(a: &Csc<S::T>, b: &Csc<S::T>, threads: &[usize])
where
    S::T: PartialEq + std::fmt::Debug,
{
    let ws = SpgemmWorkspace::new();
    for kernel in KERNELS {
        let baseline = spgemm_with::<S, _, _>(a, b, kernel, Schedule::Fixed(256), &ws);
        for &t in threads {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .expect("test pool");
            for schedule in SCHEDULES {
                let got = pool.install(|| spgemm_with::<S, _, _>(a, b, kernel, schedule, &ws));
                assert_eq!(
                    got, baseline,
                    "{kernel:?} / {schedule:?} / {t} threads diverged"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_products_are_schedule_invariant(
        a in arb_matrix(40, 35, 140),
        b in arb_matrix(35, 30, 120),
    ) {
        assert_schedule_invariant::<PlusTimes<f64>>(&a, &b, &[1, 2, 4]);
    }
}

#[test]
fn boolean_semiring_is_schedule_invariant() {
    // reachability squaring over OrAnd — a non-numeric semiring
    let mut coo = Coo::new(50, 50);
    for i in 0..49u32 {
        coo.push(i + 1, i, true);
        if i % 7 == 0 {
            coo.push(i, (i * 3) % 50, true);
        }
    }
    let a = coo.to_csc_with(|x, _| x);
    assert_schedule_invariant::<OrAnd>(&a, &a, &[1, 3]);
}

#[test]
fn skewed_single_heavy_column() {
    // one hub column carries ~all flops; empty columns surround it
    let mut am = Coo::new(200, 150);
    for i in 0..200u32 {
        for k in 0..3u32 {
            am.push(i, (i * 7 + k) % 150, 1.0 + k as f64);
        }
    }
    let a = am.to_csc_with(|x, y| x + y);
    let mut bm = Coo::new(150, 90);
    for k in 0..150u32 {
        bm.push(k, 40, 0.5); // the hub
    }
    bm.push(3, 0, 1.0);
    bm.push(9, 89, 2.0);
    let b = bm.to_csc_with(|x, _| x);
    assert_schedule_invariant::<PlusTimes<f64>>(&a, &b, &[1, 2, 4, 8]);
}

#[test]
fn empty_shapes() {
    let a: Csc<f64> = Csc::zeros(12, 9);
    let b: Csc<f64> = Csc::zeros(9, 0);
    let ws = SpgemmWorkspace::new();
    for schedule in SCHEDULES {
        let c = spgemm_with::<PlusTimes<f64>, _, _>(&a, &b, Kernel::Hybrid, schedule, &ws);
        assert_eq!((c.nrows(), c.ncols(), c.nnz()), (12, 0, 0), "{schedule:?}");
        let b2: Csc<f64> = Csc::zeros(9, 21);
        let c2 = spgemm_with::<PlusTimes<f64>, _, _>(&a, &b2, Kernel::Hybrid, schedule, &ws);
        assert_eq!((c2.ncols(), c2.nnz()), (21, 0), "{schedule:?}");
    }
}

#[test]
fn workspace_reuse_across_differing_shapes_is_safe() {
    // the same arena serves multiplies of different dimensions (the
    // Galerkin session's RᵀA then (RᵀA)R pattern): SPA arrays and hash
    // tables sized by the first multiply must not corrupt the second
    let mut am = Coo::new(300, 60);
    for i in 0..300u32 {
        am.push(i, i % 60, 1.0);
    }
    let a_big = am.to_csc_with(|x, y| x + y);
    let mut bm = Coo::new(60, 40);
    for i in 0..60u32 {
        bm.push(i, i % 40, 2.0);
    }
    let b = bm.to_csc_with(|x, y| x + y);
    let a_small = {
        let mut m = Coo::new(20, 60);
        for i in 0..60u32 {
            m.push(i % 20, i, 1.0);
        }
        m.to_csc_with(|x, y| x + y)
    };
    let ws = SpgemmWorkspace::new();
    let fresh = SpgemmWorkspace::new();
    for kernel in KERNELS {
        let big1 =
            spgemm_with::<PlusTimes<f64>, _, _>(&a_big, &b, kernel, Schedule::FlopBalanced, &ws);
        let small1 =
            spgemm_with::<PlusTimes<f64>, _, _>(&a_small, &b, kernel, Schedule::FlopBalanced, &ws);
        let big2 =
            spgemm_with::<PlusTimes<f64>, _, _>(&a_big, &b, kernel, Schedule::FlopBalanced, &fresh);
        let small2 = spgemm_with::<PlusTimes<f64>, _, _>(
            &a_small,
            &b,
            kernel,
            Schedule::FlopBalanced,
            &fresh,
        );
        assert_eq!(big1, big2, "{kernel:?}");
        assert_eq!(small1, small2, "{kernel:?}");
    }
}
