//! Overlap-equivalence suite (PR 10): turning prefetch overlap on must be
//! observationally invisible everywhere except wall-clock. Every staged
//! consumer of the [`Prefetcher`] — the 1D overlap entry, 2D SUMMA's
//! A-panel staging, the 3D split's per-layer pipelines, and the session's
//! miss-fetch assembly — is run as a `{overlap off, overlap on, overlap
//! under a byte budget} × {SimComm, SA_BACKEND}` matrix and every cell is
//! diffed against the pinned serial overlap-off baseline:
//!
//! * outputs are bit-identical (`f64::to_bits` fingerprints over
//!   integer-valued operands, so sums are exact and scheduling cannot
//!   perturb them);
//! * per-rank [`CommStats`] are byte-identical — gets are metered at
//!   issue time, so the async fetch path cannot change counters or
//!   double-meter a prefetched-then-demanded range;
//! * prefetch staging buffers come from the workspace arena — steady-state
//!   alloc counters freeze with overlap on, exactly as they do without it.
//!
//! CI runs this suite once per `SA_BACKEND` value (sim / threads / procs),
//! so the promise holds when GetReq/GetResp round-trips are genuinely
//! asynchronous over sockets, not just on the deterministic simulator.

use saspgemm::dist::{
    spgemm_1d_overlap_ws, spgemm_1d_ws, spgemm_split_3d_sa_ws_cfg, spgemm_summa_2d_sa_ws_cfg,
    uniform_offsets, CacheConfig, DistMat1D, DistMat2D, DistMat3D, FetchMode, Plan1D,
    SpgemmSession,
};
use saspgemm::mpisim::{
    Backend, Comm, CommStats, Grid2D, Grid3D, PrefetchConfig, RankJob, Universe,
};
use saspgemm::sparse::gen::erdos_renyi;
use saspgemm::sparse::semiring::{MinPlus, PlusTimes};
use saspgemm::sparse::{Csc, SpgemmWorkspace};
use std::fmt::Write as _;
use std::time::Duration;

/// ER matrix with small-integer values: f64 sums over products of these
/// are exact, so overlap scheduling cannot perturb results even where an
/// entry point reassociates the ⊕-reduction.
fn int_er(nrows: usize, ncols: usize, deg: f64, seed: u64) -> Csc<f64> {
    erdos_renyi(nrows, ncols, deg, seed).map(|v| (v * 7.0).round() + 1.0)
}

/// Bit-exact fingerprint: dims + every (row, col, value-bits) triple.
fn fp_csc(c: &Csc<f64>) -> String {
    let mut s = format!("{}x{}#{}:", c.nrows(), c.ncols(), c.nnz());
    for (i, j, v) in c.iter() {
        write!(s, "{i},{j},{:x};", v.to_bits()).unwrap();
    }
    s
}

fn fp_opt(c: &Option<Csc<f64>>) -> String {
    match c {
        Some(c) => fp_csc(c),
        None => "-".into(),
    }
}

type Verdict = (String, CommStats);

/// The overlap axis: disabled, unlimited, and a deliberately tiny byte
/// budget that forces most ranges onto the demand path at rendezvous.
fn overlap_configs() -> [(&'static str, PrefetchConfig); 3] {
    [
        ("off", PrefetchConfig::disabled()),
        ("on", PrefetchConfig::on()),
        ("budget1k", PrefetchConfig::budget(1024)),
    ]
}

/// The driver: pin the serial overlap-off run as the baseline, then demand
/// per-rank bit-identical outputs and byte-identical traffic from every
/// (overlap config, backend) cell.
fn assert_overlap_equivalence<J, F>(nranks: usize, mk: F, what: &str)
where
    J: RankJob<Out = Verdict>,
    F: Fn(PrefetchConfig) -> J,
{
    let u = Universe::new(nranks).with_watchdog(Some(Duration::from_secs(120)));
    let baseline = u.run_backend(Backend::Sim, &mk(PrefetchConfig::disabled()));
    for (cname, cfg) in overlap_configs() {
        for be in [Backend::Sim, Backend::from_env()] {
            let got = u.run_backend(be, &mk(cfg));
            assert_eq!(
                baseline.len(),
                got.len(),
                "{what} [{cname}/{}]: rank count",
                be.name()
            );
            for (rank, (base, g)) in baseline.iter().zip(&got).enumerate() {
                assert_eq!(
                    base.0,
                    g.0,
                    "{what} [{cname}/{}]: rank {rank} output diverged from overlap-off serial baseline",
                    be.name()
                );
                assert_eq!(
                    base.1,
                    g.1,
                    "{what} [{cname}/{}]: rank {rank} metered traffic diverged from overlap-off serial baseline",
                    be.name()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cells — one per staged consumer of the prefetch engine
// ---------------------------------------------------------------------------

/// 1D overlap entry: A-plan fetches staged behind the local-half kernel.
struct OneD<'a> {
    a: &'a Csc<f64>,
    mode: FetchMode,
    cfg: PrefetchConfig,
}

impl RankJob for OneD<'_> {
    type Out = Verdict;
    fn run<C: Comm>(&self, comm: &C) -> Verdict {
        let offsets = uniform_offsets(self.a.ncols(), comm.size());
        let da = DistMat1D::from_global(comm, self.a, &offsets);
        let db = da.clone();
        let plan = Plan1D {
            fetch_mode: self.mode,
            ..Default::default()
        };
        let ws = SpgemmWorkspace::new();
        let before = comm.stats();
        let (c, rep) = spgemm_1d_overlap_ws(comm, &da, &db, &plan, self.cfg, &ws);
        let traffic = comm.stats() - before;
        let s = format!(
            "{}|fetched={} msgs={} needed={} global={}",
            fp_csc(&c.into_local_csc()),
            rep.fetched_bytes,
            rep.rdma_msgs,
            rep.needed_bytes,
            rep.fetched_bytes_global,
        );
        (s, traffic)
    }
}

#[test]
fn overlap_1d_is_byte_identical() {
    let a = int_er(48, 48, 4.0, 111);
    for mode in [FetchMode::Block(4), FetchMode::ColumnExact] {
        assert_overlap_equivalence(
            4,
            |cfg| OneD { a: &a, mode, cfg },
            &format!("1D overlap {mode:?}"),
        );
    }
}

/// 2D SUMMA staged cell: the A panel is prefetched while the B
/// request/ship exchange and the Ã metadata walk run in the foreground.
struct TwoD<'a> {
    a: &'a Csc<f64>,
    b: &'a Csc<f64>,
    pr: usize,
    pc: usize,
    tropical: bool,
    cfg: PrefetchConfig,
}

impl RankJob for TwoD<'_> {
    type Out = Verdict;
    fn run<C: Comm>(&self, comm: &C) -> Verdict {
        let grid = Grid2D::new(comm, self.pr, self.pc);
        let da = DistMat2D::from_global(&grid, self.a);
        let db = DistMat2D::from_global(&grid, self.b);
        let ws = SpgemmWorkspace::new();
        let before = comm.stats();
        let s = if self.tropical {
            let (c, _rep) = spgemm_summa_2d_sa_ws_cfg::<_, MinPlus>(
                comm,
                &grid,
                &da,
                &db,
                FetchMode::Block(4),
                self.cfg,
                &ws,
            );
            fp_opt(&c.gather(comm, &grid))
        } else {
            let (c, rep) = spgemm_summa_2d_sa_ws_cfg::<_, PlusTimes<f64>>(
                comm,
                &grid,
                &da,
                &db,
                FetchMode::Block(4),
                self.cfg,
                &ws,
            );
            format!(
                "{}|af={} am={} bs={}",
                fp_opt(&c.gather(comm, &grid)),
                rep.a_fetched_bytes,
                rep.a_rdma_msgs,
                rep.b_shipped_bytes,
            )
        };
        (s, comm.stats() - before)
    }
}

#[test]
fn overlap_2d_is_byte_identical() {
    let a = int_er(40, 40, 3.5, 121);
    let b = int_er(40, 40, 2.5, 122);
    for (pr, pc) in [(2, 2), (1, 4)] {
        for tropical in [false, true] {
            assert_overlap_equivalence(
                pr * pc,
                |cfg| TwoD {
                    a: &a,
                    b: &b,
                    pr,
                    pc,
                    tropical,
                    cfg,
                },
                &format!("2D staged {pr}x{pc} tropical={tropical}"),
            );
        }
    }
}

/// 3D split cell: the prefetch config threads into every layer's SUMMA.
struct ThreeD<'a> {
    a: &'a Csc<f64>,
    b: &'a Csc<f64>,
    q: usize,
    layers: usize,
    cfg: PrefetchConfig,
}

impl RankJob for ThreeD<'_> {
    type Out = Verdict;
    fn run<C: Comm>(&self, comm: &C) -> Verdict {
        let grid = Grid3D::new(comm, self.q, self.layers);
        let da = DistMat3D::from_global_split_cols(&grid, self.a);
        let db = DistMat3D::from_global_split_rows(&grid, self.b);
        let ws = SpgemmWorkspace::new();
        let before = comm.stats();
        let (c, rep) = spgemm_split_3d_sa_ws_cfg::<_, PlusTimes<f64>>(
            comm,
            &grid,
            &da,
            &db,
            FetchMode::Block(4),
            self.cfg,
            &ws,
        );
        let s = format!(
            "{}|af={} rb={} bs={}",
            fp_opt(&c.gather(comm)),
            rep.summa.a_fetched_bytes,
            rep.reduce_bytes,
            rep.summa.b_shipped_bytes,
        );
        (s, comm.stats() - before)
    }
}

#[test]
fn overlap_3d_is_byte_identical() {
    let a = int_er(36, 36, 3.0, 131);
    let b = int_er(36, 36, 3.0, 132);
    for (q, layers) in [(2, 1), (2, 2)] {
        assert_overlap_equivalence(
            q * q * layers,
            |cfg| ThreeD {
                a: &a,
                b: &b,
                q,
                layers,
                cfg,
            },
            &format!("3D layered q={q} l={layers}"),
        );
    }
}

/// Session miss-fetch cell: repeated multiplies so the overlap path sees a
/// cold miss set, a pure cache-hit iteration, and a delta-invalidation
/// miss set — the cache transcript (hits, insertions, evictions) must be
/// identical with overlap on, or the *next* iteration's bytes would drift.
struct SessionMiss<'a> {
    a: &'a Csc<f64>,
    cfg: PrefetchConfig,
}

impl RankJob for SessionMiss<'_> {
    type Out = Verdict;
    fn run<C: Comm>(&self, comm: &C) -> Verdict {
        let before = comm.stats();
        let offsets = uniform_offsets(self.a.ncols(), comm.size());
        let da = DistMat1D::from_global(comm, self.a, &offsets);
        let db = da.clone();
        let mut session = SpgemmSession::create(
            comm,
            da.clone(),
            Plan1D::default(),
            CacheConfig::unlimited(),
        );
        session.set_prefetch(self.cfg);
        let (c1, r1) = session.multiply(comm, &db);
        let (c2, r2) = session.multiply(comm, &db);
        let a2 = self.a.map(|v| v + 1.0);
        let da2 = DistMat1D::from_global(comm, &a2, &offsets);
        let invalidated = session.update_a(comm, da2);
        let (c3, r3) = session.multiply(comm, &db);
        let s = format!(
            "{}|{}|{}|r1={}/{}/{} r2={}/{} r3={}/{} inv={invalidated}",
            fp_csc(&c1.into_local_csc()),
            fp_csc(&c2.into_local_csc()),
            fp_csc(&c3.into_local_csc()),
            r1.fresh_bytes,
            r1.cache_hit_bytes,
            r1.needed_bytes,
            r2.fresh_bytes,
            r2.cache_hit_bytes,
            r3.fresh_bytes,
            r3.cache_hit_bytes,
        );
        (s, comm.stats() - before)
    }
}

#[test]
fn overlap_session_is_byte_identical() {
    let a = int_er(60, 60, 3.0, 141);
    assert_overlap_equivalence(
        4,
        |cfg| SessionMiss { a: &a, cfg },
        "session miss-fetch overlap",
    );
}

// ---------------------------------------------------------------------------
// Double-meter regression net + arena discipline
// ---------------------------------------------------------------------------

/// Regression net for the meter-at-issue contract: the overlap entry and
/// the plain inline entry must meter *exactly* the same traffic — a range
/// that is prefetched and then also consumed at rendezvous counts once,
/// never twice. Pins the full per-rank [`CommStats`], not just get bytes.
#[test]
fn overlap_1d_meters_each_range_exactly_once() {
    let a = int_er(52, 52, 4.0, 151);
    let u = Universe::new(4).with_watchdog(Some(Duration::from_secs(120)));
    struct Inline<'a>(&'a Csc<f64>);
    impl RankJob for Inline<'_> {
        type Out = Verdict;
        fn run<C: Comm>(&self, comm: &C) -> Verdict {
            let offsets = uniform_offsets(self.0.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, self.0, &offsets);
            let db = da.clone();
            let ws = SpgemmWorkspace::new();
            let before = comm.stats();
            let (c, rep) = spgemm_1d_ws(comm, &da, &db, &Plan1D::default(), &ws);
            let s = format!("{}|{}", fp_csc(&c.into_local_csc()), rep.fetched_bytes);
            (s, comm.stats() - before)
        }
    }
    let inline = u.run_backend(Backend::Sim, &Inline(&a));
    let overlapped = u.run_backend(
        Backend::Sim,
        &OneD {
            a: &a,
            mode: FetchMode::Block(256),
            cfg: PrefetchConfig::on(),
        },
    );
    for (rank, (base, got)) in inline.iter().zip(&overlapped).enumerate() {
        let base_fp = base.0.split('|').next().unwrap();
        let got_fp = got.0.split('|').next().unwrap();
        assert_eq!(base_fp, got_fp, "rank {rank}: product diverged");
        assert_eq!(
            base.1, got.1,
            "rank {rank}: overlap changed the metered traffic — a prefetched \
             range was metered twice (or a demand fetch went unmetered)"
        );
    }
}

/// Arena discipline: prefetch staging buffers come from the workspace
/// pools. After warm-up, further overlapped multiplies freeze the alloc
/// counters — only the reuse counters move.
#[test]
fn overlap_staging_is_arena_backed() {
    let a = int_er(120, 120, 4.0, 161);
    let u = Universe::new(3);
    let results = u.run(|comm| {
        let offsets = uniform_offsets(a.ncols(), comm.size());
        let da = DistMat1D::from_global(comm, &a, &offsets);
        let db = da.clone();
        let plan = Plan1D {
            global_stats: false,
            ..Default::default()
        };
        let ws = SpgemmWorkspace::new();
        // two warm-up iterations populate and size-settle the pools
        let (c1, _) = spgemm_1d_overlap_ws(comm, &da, &db, &plan, PrefetchConfig::on(), &ws);
        let _ = spgemm_1d_overlap_ws(comm, &da, &db, &plan, PrefetchConfig::on(), &ws);
        let warm = ws.counters();
        let mut last = None;
        for _ in 0..3 {
            let (c, _) = spgemm_1d_overlap_ws(comm, &da, &db, &plan, PrefetchConfig::on(), &ws);
            last = Some(c);
        }
        let steady = ws.counters();
        (
            c1.into_local_csc(),
            last.unwrap().into_local_csc(),
            warm,
            steady,
        )
    });
    for (first, last, warm, steady) in results {
        assert_eq!(first, last, "steady-state iterations stay correct");
        assert!(warm.total_allocs() > 0, "warm-up does allocate");
        assert_eq!(
            steady.chunk_allocs, warm.chunk_allocs,
            "steady state allocates no staging chunks — prefetch buffers come from the arena"
        );
        assert_eq!(
            steady.idx_allocs, warm.idx_allocs,
            "steady state allocates no index buffers"
        );
        assert_eq!(
            steady.scratch_allocs, warm.scratch_allocs,
            "steady state allocates no per-thread scratch"
        );
        assert!(
            steady.chunk_reuses > warm.chunk_reuses,
            "steady state is served from the pools"
        );
    }
}

/// Same discipline for the session's overlapped miss-fetch path: once the
/// cache is warm the overlapped multiply allocates nothing.
#[test]
fn overlap_session_steady_state_is_arena_backed() {
    let a = int_er(160, 160, 5.0, 171);
    let u = Universe::new(3);
    let results = u.run(|comm| {
        let offsets = uniform_offsets(a.ncols(), comm.size());
        let da = DistMat1D::from_global(comm, &a, &offsets);
        let db = da.clone();
        let mut s = SpgemmSession::create(
            comm,
            da,
            Plan1D {
                global_stats: false,
                ..Default::default()
            },
            CacheConfig::unlimited(),
        );
        s.set_prefetch(PrefetchConfig::on());
        let (c1, _) = s.multiply(comm, &db);
        let (_c2, _) = s.multiply(comm, &db);
        let warm = s.workspace().counters();
        let mut last = None;
        for _ in 0..4 {
            let (c, rep) = s.multiply(comm, &db);
            assert_eq!(rep.fresh_bytes, 0, "warm cache refetches nothing");
            last = Some(c);
        }
        let steady = s.workspace().counters();
        (
            c1.into_local_csc(),
            last.unwrap().into_local_csc(),
            warm,
            steady,
        )
    });
    for (first, last, warm, steady) in results {
        assert_eq!(first, last, "steady-state iterations stay correct");
        assert_eq!(
            (
                steady.chunk_allocs,
                steady.idx_allocs,
                steady.scratch_allocs
            ),
            (warm.chunk_allocs, warm.idx_allocs, warm.scratch_allocs),
            "overlapped session steady state allocates nothing"
        );
    }
}
