//! Cross-crate integration: all four distributed SpGEMM algorithms must
//! produce exactly the result of the serial reference, across shapes,
//! sparsities, structures, and process-grid geometries.

use saspgemm::dist::mat3d::DistMat3D;
use saspgemm::dist::reference::serial_spgemm;
use saspgemm::dist::{
    spgemm_1d, spgemm_outer_1d, spgemm_split_3d, spgemm_summa_2d, uniform_offsets, DistMat1D,
    DistMat2D, FetchMode, Plan1D,
};
use saspgemm::mpisim::{Grid2D, Grid3D, Universe};
use saspgemm::sparse::gen::{banded, erdos_renyi, rmat, sbm, stencil3d};
use saspgemm::sparse::Csc;

fn check_all_algorithms(a: &Csc<f64>, b: &Csc<f64>, label: &str) {
    let expect = serial_spgemm(a, b);

    // 1D sparsity-aware, several P and fetch modes
    for p in [2usize, 3, 5] {
        for mode in [FetchMode::Block(7), FetchMode::ColumnExact] {
            let u = Universe::new(p);
            let got = u
                .run(|comm| {
                    let da = DistMat1D::from_global(comm, a, &uniform_offsets(a.ncols(), p));
                    let db = DistMat1D::from_global(comm, b, &uniform_offsets(b.ncols(), p));
                    let plan = Plan1D {
                        fetch_mode: mode,
                        ..Default::default()
                    };
                    let (c, _) = spgemm_1d(comm, &da, &db, &plan);
                    c.gather(comm)
                })
                .remove(0)
                .unwrap();
            assert!(
                got.max_abs_diff(&expect) < 1e-10,
                "{label}: 1D P={p} {mode:?}"
            );
        }
    }

    // outer-product 1D
    {
        let u = Universe::new(4);
        let got = u
            .run(|comm| {
                let da = DistMat1D::from_global(comm, a, &uniform_offsets(a.ncols(), 4));
                let db = DistMat1D::from_global(comm, b, &uniform_offsets(b.ncols(), 4));
                let (c, _) = spgemm_outer_1d(comm, &da, &db);
                c.gather(comm)
            })
            .remove(0)
            .unwrap();
        assert!(got.max_abs_diff(&expect) < 1e-10, "{label}: outer-1D");
    }

    // 2D SUMMA
    {
        let u = Universe::new(4);
        let got = u
            .run(|comm| {
                let grid = Grid2D::square(comm);
                let da = DistMat2D::from_global(&grid, a);
                let db = DistMat2D::from_global(&grid, b);
                let (c, _) = spgemm_summa_2d(comm, &grid, &da, &db);
                c.gather(comm, &grid)
            })
            .remove(0)
            .unwrap();
        assert!(got.max_abs_diff(&expect) < 1e-10, "{label}: 2D SUMMA");
    }

    // 3D split, two geometries
    for (q, layers) in [(2usize, 2usize), (1, 4)] {
        let u = Universe::new(q * q * layers);
        let got = u
            .run(|comm| {
                let grid = Grid3D::new(comm, q, layers);
                let da = DistMat3D::from_global_split_cols(&grid, a);
                let db = DistMat3D::from_global_split_rows(&grid, b);
                let (c, _) = spgemm_split_3d(comm, &grid, &da, &db);
                c.gather(comm)
            })
            .remove(0)
            .unwrap();
        assert!(
            got.max_abs_diff(&expect) < 1e-10,
            "{label}: 3D {q}x{q}x{layers}"
        );
    }
}

#[test]
fn random_square() {
    let a = erdos_renyi(64, 64, 5.0, 1);
    check_all_algorithms(&a, &a, "er_square");
}

#[test]
fn rectangular_chain() {
    let a = erdos_renyi(50, 36, 4.0, 2);
    let b = erdos_renyi(36, 44, 4.0, 3);
    check_all_algorithms(&a, &b, "rect");
}

#[test]
fn structured_stencil() {
    let a = stencil3d(5, 4, 4, true);
    check_all_algorithms(&a, &a, "stencil");
}

#[test]
fn banded_nonsymmetric() {
    let a = banded(70, 6, 0.5, false, 4);
    check_all_algorithms(&a, &a, "banded");
}

#[test]
fn powerlaw_graph() {
    let a = rmat(6, 6, (0.57, 0.19, 0.19, 0.05), 5);
    check_all_algorithms(&a, &a, "rmat");
}

#[test]
fn hidden_cluster_graph() {
    let a = sbm(80, 4, 8.0, 1.0, true, 6);
    check_all_algorithms(&a, &a, "sbm");
}

#[test]
fn hypersparse_input() {
    // nnz far below n: DCSC's home turf
    let a = erdos_renyi(400, 400, 0.05, 7);
    assert!(a.nnz() < 60);
    check_all_algorithms(&a, &a, "hypersparse");
}

#[test]
fn tall_skinny_times_short_fat() {
    let a = erdos_renyi(90, 8, 2.0, 8);
    let b = erdos_renyi(8, 90, 2.0, 9);
    check_all_algorithms(&a, &b, "outerish");
}

#[test]
fn empty_and_identity() {
    let z: Csc<f64> = Csc::zeros(30, 30);
    check_all_algorithms(&z, &z, "zero");
    let i = Csc::diagonal(&vec![1.0; 30]);
    let a = erdos_renyi(30, 30, 3.0, 10);
    check_all_algorithms(&i, &a, "identity_left");
    check_all_algorithms(&a, &i, "identity_right");
}
