//! Offline stand-in for [rand](https://crates.io/crates/rand).
//!
//! Implements the subset this workspace uses: `rngs::StdRng` seeded through
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `gen_range` (half-open and inclusive integer/float ranges), `gen_bool`,
//! `gen::<f64>()`, and `seq::SliceRandom::shuffle` (Fisher–Yates).
//!
//! The generator is xoshiro256** seeded via SplitMix64 — small, fast, and
//! statistically solid for the synthetic-matrix generators and randomized
//! tests in this repository. Streams differ from the real crate's ChaCha12
//! `StdRng`; nothing in the workspace depends on exact streams, only on
//! deterministic seeding and uniformity.

/// Core source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Inclusive upper bound.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, f64::from_bits(hi.to_bits() + 1))
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, f32::from_bits(hi.to_bits() + 1))
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Values producible by [`Rng::gen`] (only what the workspace samples).
pub trait Standard {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::generate(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state, as the
            // xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Fisher–Yates shuffling for slices.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-4..=4i32);
            assert!((-4..=4).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left slice untouched"
        );
    }
}
