//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build container has no registry access, so this workspace vendors the
//! *subset* of rayon's API its crates actually use, implemented on plain
//! `std::thread` scoped threads:
//!
//! * [`ThreadPool`] / [`ThreadPoolBuilder`] — a pool here is a concurrency
//!   *budget* (a thread count), not a set of live threads. [`ThreadPool::install`]
//!   runs the closure on the calling thread with a thread-local budget set;
//!   parallel iterators spawn scoped workers up to that budget per call.
//! * [`prelude`] — `into_par_iter()` over `Range<usize>` with `with_min_len`,
//!   `map`, `map_init`, and order-preserving `collect()` into `Vec`.
//! * [`current_num_threads`] — the installed budget (1 outside any pool).
//!
//! Semantics preserved from real rayon: deterministic output order, per-worker
//! `map_init` state, work stealing at chunk granularity (an atomic cursor), and
//! real parallel execution when the budget exceeds one thread. Not implemented:
//! nested pools, `join`, `scope`, the full iterator zoo.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

thread_local! {
    /// Concurrency budget installed by [`ThreadPool::install`] on this thread.
    static INSTALLED: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads in the currently installed pool, or a machine default
/// when called outside [`ThreadPool::install`].
pub fn current_num_threads() -> usize {
    let n = INSTALLED.with(|c| c.get());
    if n > 0 {
        n
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Budget actually used by parallel iterators on this thread.
fn effective_threads() -> usize {
    current_num_threads()
}

/// Error type returned by [`ThreadPoolBuilder::build`] (infallible here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Accepted for API compatibility; scoped workers are anonymous here.
    pub fn thread_name<F>(self, _f: F) -> ThreadPoolBuilder
    where
        F: FnMut(usize) -> String + 'static,
    {
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { n })
    }
}

/// A concurrency budget: `install` makes parallel iterators on the calling
/// thread use up to `n` scoped worker threads.
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.n
    }

    /// Run `op` with this pool installed as the ambient budget.
    pub fn install<R: Send>(&self, op: impl FnOnce() -> R + Send) -> R {
        let prev = INSTALLED.with(|c| c.replace(self.n));
        let out = op();
        INSTALLED.with(|c| c.set(prev));
        out
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator (ranges of `usize` only — the shape
/// every hot loop in this workspace uses).
pub trait IntoParallelIterator {
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            range: self,
            min_len: 1,
        }
    }
}

/// Marker trait so `use rayon::prelude::*` mirrors the real crate.
pub trait ParallelIterator {}

/// A parallel index range.
pub struct ParRange {
    range: Range<usize>,
    min_len: usize,
}

impl ParallelIterator for ParRange {}

impl ParRange {
    /// Lower bound on items handed to one worker at a time.
    pub fn with_min_len(mut self, min: usize) -> ParRange {
        self.min_len = min.max(1);
        self
    }

    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParMap { src: self, f }
    }

    pub fn map_init<I, T, INIT, F>(self, init: INIT, f: F) -> ParMapInit<INIT, F>
    where
        INIT: Fn() -> I + Sync,
        F: Fn(&mut I, usize) -> T + Sync,
        T: Send,
    {
        ParMapInit { src: self, init, f }
    }
}

pub struct ParMap<F> {
    src: ParRange,
    f: F,
}

impl<F> ParallelIterator for ParMap<F> {}

impl<F> ParMap<F> {
    pub fn collect<T>(self) -> Vec<T>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        let f = &self.f;
        run_chunked(
            self.src.range,
            self.src.min_len,
            &|_state: &mut (), i| f(i),
            &|| (),
        )
    }
}

pub struct ParMapInit<INIT, F> {
    src: ParRange,
    init: INIT,
    f: F,
}

impl<INIT, F> ParallelIterator for ParMapInit<INIT, F> {}

impl<INIT, F> ParMapInit<INIT, F> {
    pub fn collect<I, T>(self) -> Vec<T>
    where
        INIT: Fn() -> I + Sync,
        F: Fn(&mut I, usize) -> T + Sync,
        T: Send,
    {
        let f = &self.f;
        run_chunked(
            self.src.range,
            self.src.min_len,
            &|state: &mut I, i| f(state, i),
            &self.init,
        )
    }
}

/// Execute `f` over every index of `range`, in parallel when the installed
/// budget allows, preserving index order in the output. Workers claim
/// contiguous chunks from an atomic cursor (chunk-granular stealing) and
/// keep one `init()` state each for the duration of the call.
fn run_chunked<I, T, F, INIT>(range: Range<usize>, min_len: usize, f: &F, init: &INIT) -> Vec<T>
where
    F: Fn(&mut I, usize) -> T + Sync,
    INIT: Fn() -> I + Sync,
    T: Send,
{
    let len = range.end.saturating_sub(range.start);
    let threads = effective_threads().min(len.max(1));
    if threads <= 1 || len <= min_len {
        let mut state = init();
        return range.map(|i| f(&mut state, i)).collect();
    }
    // chunk size: enough chunks for stealing, bounded below by min_len
    let chunk = ((len / (threads * 4)).max(min_len)).max(1);
    let nchunks = len.div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let start = range.start;
    let worker = |out: &mut Vec<(usize, Vec<T>)>| {
        let mut state = init();
        loop {
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            if c >= nchunks {
                break;
            }
            let lo = start + c * chunk;
            let hi = (lo + chunk).min(range.end);
            let vals: Vec<T> = (lo..hi).map(|i| f(&mut state, i)).collect();
            out.push((c, vals));
        }
    };
    let mut pieces: Vec<(usize, Vec<T>)> = Vec::with_capacity(nchunks);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    worker(&mut mine);
                    mine
                })
            })
            .collect();
        worker(&mut pieces);
        for h in handles {
            pieces.extend(h.join().expect("rayon-shim worker panicked"));
        }
    });
    pieces.sort_unstable_by_key(|&(c, _)| c);
    let mut out = Vec::with_capacity(len);
    for (_, mut vals) in pieces {
        out.append(&mut vals);
    }
    out
}

// Re-exported so downstream code can hold `Arc<rayon::ThreadPool>` cheaply.
#[doc(hidden)]
pub type PoolHandle = Arc<ThreadPool>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let got: Vec<usize> = pool.install(|| (0..10_000).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(got.len(), 10_000);
        assert!(got.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn map_init_state_is_per_worker() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        // the per-worker counter must never be shared across workers racily;
        // results depend only on the index, not the counter
        let got: Vec<usize> = pool.install(|| {
            (0..5_000)
                .into_par_iter()
                .map_init(
                    || 0usize,
                    |acc, i| {
                        *acc += 1;
                        i
                    },
                )
                .collect()
        });
        assert!(got.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn install_sets_current_num_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 7);
    }

    #[test]
    fn sequential_outside_pool_still_works() {
        let got: Vec<usize> = (0..100)
            .into_par_iter()
            .with_min_len(8)
            .map(|i| i)
            .collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range() {
        let got: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(got.is_empty());
    }
}
