//! Offline stand-in for [parking_lot](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync::Mutex`/`Condvar` behind parking_lot's poison-free API:
//! `lock()` returns the guard directly and `Condvar::wait` takes the guard by
//! `&mut`. Poisoning is translated to a panic propagation (a poisoned lock
//! means a worker already panicked; the simulation re-raises).

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard};
use std::time::Duration;

/// Mutual exclusion primitive, poison-free `lock()`.
#[derive(Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(|p| p.into_inner())),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

/// RAII guard; releases the lock on drop.
pub struct MutexGuard<'a, T> {
    /// `Option` so [`Condvar::wait`] can temporarily take the std guard out
    /// while the thread is parked.
    guard: Option<StdGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable whose `wait` re-borrows the parking_lot-style guard.
#[derive(Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar::default()
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present before wait");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|p| p.into_inner());
        guard.guard = Some(reacquired);
    }

    /// As [`Condvar::wait`], but give up after `timeout`. Mirrors
    /// parking_lot's `wait_for`: the result says whether the wait timed out
    /// (spurious wakeups are possible either way, so callers re-check their
    /// condition regardless).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard present before wait");
        let (reacquired, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|p| p.into_inner());
        guard.guard = Some(reacquired);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Outcome of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_notify_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap());
    }

    #[test]
    fn contended_counter() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
