//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Provides the harness surface the `local_kernels` bench target uses:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId::new`], [`Bencher::iter`], and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a
//! warmup-plus-samples loop reporting the minimum and median per-iteration
//! time — no statistics engine, no HTML reports, no baselines.

use std::time::Instant;

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Per-benchmark timing driver.
pub struct Bencher {
    samples: usize,
    /// Minimum observed per-iteration seconds.
    best_s: f64,
    /// All per-sample means, for the median.
    all_s: Vec<f64>,
}

impl Bencher {
    /// Time `routine`: one warmup call, then `samples` timed calls.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            let dt = t0.elapsed().as_secs_f64();
            self.best_s = self.best_s.min(dt);
            self.all_s.push(dt);
        }
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, label: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            best_s: f64::INFINITY,
            all_s: Vec::new(),
        };
        f(&mut b);
        b.all_s.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let median = b.all_s.get(b.all_s.len() / 2).copied().unwrap_or(0.0);
        println!(
            "{}/{label}: min {:.3} ms, median {:.3} ms ({} samples)",
            self.name,
            b.best_s * 1e3,
            median * 1e3,
            b.all_s.len()
        );
    }

    pub fn finish(&mut self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }
}

/// Group bench functions under one callable, as the real macro does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    criterion_group!(smoke, trivial);

    #[test]
    fn harness_runs() {
        smoke();
    }
}
