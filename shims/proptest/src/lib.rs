//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Supports what this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   attribute and multiple `#[test] fn name(arg in strategy, ..) { .. }`
//!   items per block;
//! * strategies: integer/float ranges (`0..n`, `-3i32..=3`), tuples of
//!   strategies, [`collection::vec`] with fixed or ranged length, and
//!   [`Strategy::prop_map`];
//! * [`prop_assert!`] / [`prop_assert_eq!`], which fail the *case* with a
//!   formatted message (reported with the case number and the generating
//!   seed so a failure is reproducible).
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! inputs' seed, not a minimized value) and no persistence files. Cases are
//! generated from a fixed per-test seed, so runs are deterministic.

use rand::rngs::StdRng;
pub use rand::SeedableRng;

/// Runner RNG type used to generate values.
pub type TestRng = StdRng;

/// Error a property body produces through `prop_assert*`.
pub type TestCaseError = String;

/// Generation-only strategy: produce one value from the runner RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`fn@vec`]: a fixed size or a range of sizes.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    /// Strategy yielding `Vec`s of `element` values with `size` entries.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (`cases` is the only knob this stand-in honors).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; unused without persistence support.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

#[doc(hidden)]
pub fn __run_cases(
    test_path: &str,
    cases: u32,
    mut one_case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for case in 0..cases {
        // deterministic per-(test, case) seed so any failure names a
        // reproducible generation stream
        let mut hash = 0xcbf29ce484222325u64;
        for b in test_path.bytes() {
            hash = (hash ^ b as u64).wrapping_mul(0x100000001b3);
        }
        let seed = hash ^ ((case as u64) << 32);
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(msg) = one_case(&mut rng) {
            panic!("property failed at case {case} (rng seed {seed:#x}): {msg}");
        }
    }
}

/// The property-test macro. Mirrors proptest's surface syntax for the forms
/// used in this repository.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $( let $arg = $strat; )*
                $crate::__run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    config.cases,
                    |__rng| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $( let $arg = $crate::Strategy::generate(&$arg, __rng); )*
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "{} (left: `{:?}`, right: `{:?}`)",
                format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in -5i32..=5, n in 1usize..20) {
            prop_assert!(x < 10);
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((1..20).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(
            v in collection::vec((0u32..100, 0u32..100), 1..30),
            d in (0u64..9).prop_map(|x| x * 2),
        ) {
            prop_assert!(d % 2 == 0 && d < 18);
            prop_assert!(!v.is_empty() && v.len() < 30);
            prop_assert!(v.iter().all(|&(a, b)| a < 100 && b < 100));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_reports_case() {
        crate::__run_cases("demo", 5, |_rng| Err("boom".to_string()));
    }
}
