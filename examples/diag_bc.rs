//! Diagnostic: per-level breakdown of the 1D BC forward search.
//! Not part of the documented example set — used to attribute time between
//! RDMA, local SpGEMM and metadata phases when tuning the BC engine.

use saspgemm::dist::{prepare, spgemm_1d, uniform_offsets, DistMat1D, Plan1D, Strategy};
use saspgemm::mpisim::Universe;
use saspgemm::sparse::ewise::mask_complement;
use saspgemm::sparse::gen::{Dataset, Scale};
use saspgemm::sparse::semiring::PlusTimes;
use saspgemm::sparse::{Coo, Dcsc, Vidx};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let p = 16;
    let a = Dataset::EukaryaLike.build(Scale::Small);
    println!("eukarya_like: n={} nnz={}", a.nrows(), a.nnz());
    let prep = prepare(
        &a,
        p,
        Strategy::Partition {
            seed: 1,
            epsilon: 0.05,
        },
    );
    let a = prep.a;
    let batch = (a.nrows() / 625).max(16);
    let sources: Vec<Vidx> = saspgemm::apps::bc::pick_sources(a.nrows(), batch, 7);

    let u = Universe::new(p);
    let reports = u.run(move |comm| {
        let n = a.nrows();
        let b = sources.len();
        let a01 = a.map(|_| 1.0);
        let n_offsets_v = uniform_offsets(n, comm.size());
        let da = DistMat1D::from_global(comm, &a01, &n_offsets_v);
        let n_offsets = da.offsets().clone();
        let (c0, c1) = (n_offsets[comm.rank()], n_offsets[comm.rank() + 1]);
        let mut fringe = {
            let mut coo = Coo::new(b, c1 - c0);
            for (j, &s) in sources.iter().enumerate() {
                let su = s as usize;
                if su >= c0 && su < c1 {
                    coo.push(j as Vidx, (su - c0) as Vidx, 1.0);
                }
            }
            coo.to_csc_with(|x, _| x)
        };
        let mut visited = fringe.clone();
        let mut out = Vec::new();
        let plan = Plan1D::default();
        loop {
            let t0 = Instant::now();
            let f_dist =
                DistMat1D::from_local(b, n, Arc::clone(&n_offsets), Dcsc::from_csc(&fringe));
            let (next, rep) = spgemm_1d(comm, &f_dist, &da, &plan);
            let spgemm_s = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let masked = mask_complement(&next.into_local_csc(), &visited);
            let mask_s = t1.elapsed().as_secs_f64();
            let live = comm.allreduce(masked.nnz() as u64, |x, y| x + y);
            out.push((
                comm.rank(),
                fringe.nnz(),
                spgemm_s,
                mask_s,
                rep.breakdown,
                rep.fetched_bytes,
                rep.rdma_msgs,
            ));
            if live == 0 {
                break;
            }
            visited = saspgemm::sparse::ewise::ewise_add::<PlusTimes<f64>>(
                &visited,
                &masked.map(|_| 1.0),
            );
            fringe = masked;
        }
        out
    });
    // print every rank at every level
    let levels = reports[0].len();
    for l in 0..levels {
        println!("== level {l}");
        for r in reports.iter().map(|r| &r[l]) {
            println!(
                "  rank {:2}: fringe_nnz={:6} spgemm={:7.1}ms mask={:5.1}ms comm={:7.1}ms comp={:7.1}ms other={:5.1}ms fetched={:.2}MB msgs={}",
                r.0,
                r.1,
                r.2 * 1e3,
                r.3 * 1e3,
                r.4.comm_s * 1e3,
                r.4.comp_s * 1e3,
                r.4.other_s * 1e3,
                r.5 as f64 / 1e6,
                r.6
            );
        }
    }
}
