//! Partitioning decision scenario (§V): compute the CV/memA criterion for
//! each dataset analog *before* communicating, decide whether to apply the
//! graph partitioner, and verify the decision by measuring both ways.
//!
//! Run with: `cargo run --release --example partition_explorer`

use saspgemm::dist::{analyze_1d, prepare, FetchMode, Strategy};
use saspgemm::prelude::*;
use saspgemm::sparse::gen::{Dataset, Scale};

fn main() {
    let p = 8;
    let universe = Universe::new(p);
    println!("§V criterion: partition iff CV/memA > 0.30 (computed pre-communication)\n");
    println!(
        "{:<14} {:>10} {:>10} {:>11} {:>14} {:>14}",
        "dataset", "cv_orig", "cv_metis", "partition?", "t_original_ms", "t_metis_ms"
    );
    for d in Dataset::ALL {
        let a = d.build(Scale::Tiny);
        let orig = prepare(&a, p, Strategy::Original);
        let metis = prepare(
            &a,
            p,
            Strategy::Partition {
                seed: 1,
                epsilon: 0.05,
            },
        );

        let cv_of = |m: &Csc<f64>, offsets: &[usize]| {
            universe
                .run(|comm| {
                    let da = DistMat1D::from_global(comm, m, offsets);
                    let db = da.clone();
                    analyze_1d(comm, &da, &db, FetchMode::default()).cv_over_mem
                })
                .remove(0)
        };
        let time_of = |m: &Csc<f64>, offsets: &[usize]| {
            universe
                .run(|comm| {
                    let da = DistMat1D::from_global(comm, m, offsets);
                    let db = da.clone();
                    let t0 = std::time::Instant::now();
                    let _ = spgemm_1d(comm, &da, &db, &Plan1D::default());
                    t0.elapsed().as_secs_f64()
                })
                .into_iter()
                .fold(0.0f64, f64::max)
        };

        let cv_orig = cv_of(&orig.a, &orig.offsets);
        let cv_metis = cv_of(&metis.a, &metis.offsets);
        let decision = cv_orig > 0.30;
        let t_orig = time_of(&orig.a, &orig.offsets);
        let t_metis = time_of(&metis.a, &metis.offsets);
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>11} {:>14.2} {:>14.2}",
            d.name(),
            cv_orig,
            cv_metis,
            if decision { "yes" } else { "no" },
            t_orig * 1e3,
            t_metis * 1e3
        );
    }
    println!(
        "\nreading: eukarya-like (hidden clusters) crosses the threshold and gains from METIS;"
    );
    println!("the naturally-structured matrices stay below it — exactly the paper's guidance.");
}
