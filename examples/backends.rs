//! The same autotuned multiply on all three communicator backends, with
//! matching reports: `SimComm` (serial rank-loop simulator, the default)
//! vs `ThreadComm` (threads as ranks, truly parallel) vs `ProcComm` (one
//! OS process per rank over localhost sockets).
//!
//! Run with: `cargo run --release --example backends`
//!
//! The point being demonstrated (docs/BACKENDS.md): backends may differ
//! only in wall-clock. The tuner's pick, the product, and every metered
//! byte and message are identical — the collectives are provided `Comm`
//! trait methods over the same metered transport, so byte-identity holds
//! by construction, and this example asserts it per rank — even when
//! every byte really crosses a process boundary.

use saspgemm::prelude::*;

/// One rank's share of the job, written once against the `Comm` trait so
/// the identical code runs on either backend.
fn rank_job<C: Comm>(
    comm: &C,
    a: &sa_sparse::Csc<f64>,
) -> (Option<sa_sparse::Csc<f64>>, String, u64, u64) {
    let (c, report) = spgemm_auto(comm, a, a, &CostModel::slingshot());
    (
        c,
        format!("{:?}", report.choice),
        report.comm.injected_bytes(),
        report.comm.injected_msgs(),
    )
}

/// Bit-exact fingerprint of the gathered product, compact enough to send
/// back from a forked rank process.
fn fp(c: &Option<sa_sparse::Csc<f64>>) -> String {
    match c {
        Some(c) => {
            let mut sum = 0u64;
            for (r, col, v) in c.iter() {
                sum = sum
                    .wrapping_mul(0x100000001b3)
                    .wrapping_add(v.to_bits() ^ ((r as u64) << 32) ^ col as u64);
            }
            format!("{}x{} nnz={} h={sum:x}", c.nrows(), c.ncols(), c.nnz())
        }
        None => "-".into(),
    }
}

fn main() {
    // A structured operand so the tuner has a real decision to make.
    let a = sa_sparse::gen::stencil3d(10, 10, 10, true);
    let p = 4;
    let universe = Universe::new(p);

    println!("== spgemm_auto on {p} ranks, all three backends ==");

    let t0 = std::time::Instant::now();
    let sim = universe.run(|comm| rank_job(comm, &a));
    let wall_sim = t0.elapsed();

    let t0 = std::time::Instant::now();
    let thr = universe.run_threads(|comm| rank_job(comm, &a));
    let wall_thr = t0.elapsed();

    // The procs leg returns over a socket, so the product travels as a
    // bit-exact fingerprint instead of the matrix itself.
    let t0 = std::time::Instant::now();
    let procs = universe.run_procs(|comm| {
        let (c, pick, bytes, msgs) = rank_job(comm, &a);
        (fp(&c), pick, bytes, msgs)
    });
    let wall_procs = t0.elapsed();

    // Identical pick, identical product, identical traffic — per rank.
    for (r, (s, t)) in sim.iter().zip(&thr).enumerate() {
        assert_eq!(s.1, t.1, "rank {r}: tuner pick diverged");
        assert_eq!(s.2, t.2, "rank {r}: injected bytes diverged");
        assert_eq!(s.3, t.3, "rank {r}: injected messages diverged");
        assert_eq!(s.0, t.0, "rank {r}: product diverged");
    }
    for (r, (s, q)) in sim.iter().zip(&procs).enumerate() {
        assert_eq!(q.1, s.1, "rank {r}: procs tuner pick diverged");
        assert_eq!(q.2, s.2, "rank {r}: procs injected bytes diverged");
        assert_eq!(q.3, s.3, "rank {r}: procs injected messages diverged");
        assert_eq!(q.0, fp(&s.0), "rank {r}: procs product diverged");
    }
    assert!(sim[0].0.is_some(), "rank 0 gathered C");

    println!("tuner pick           : {}", sim[0].1);
    println!(
        "product nnz (rank 0) : {}",
        sim[0].0.as_ref().unwrap().nnz()
    );
    for (r, (_, _, bytes, msgs)) in sim.iter().enumerate() {
        println!("rank {r} injected      : {bytes} B in {msgs} msgs  (identical on both backends)");
    }
    println!(
        "wall: SimComm {:.1} ms (sum of rank work)  vs  ThreadComm {:.1} ms (concurrent)  vs  ProcComm {:.1} ms (fork + TCP mesh + multiply)",
        wall_sim.as_secs_f64() * 1e3,
        wall_thr.as_secs_f64() * 1e3,
        wall_procs.as_secs_f64() * 1e3
    );
    println!("reports matched per rank on every metered counter, on all three backends.");
}
