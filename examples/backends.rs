//! The same autotuned multiply on both communicator backends, with
//! matching reports: `SimComm` (serial rank-loop simulator, the default)
//! vs `ThreadComm` (threads as ranks, truly parallel).
//!
//! Run with: `cargo run --release --example backends`
//!
//! The point being demonstrated (docs/BACKENDS.md): backends may differ
//! only in wall-clock. The tuner's pick, the product, and every metered
//! byte and message are identical — the collectives are provided `Comm`
//! trait methods over the same metered transport, so byte-identity holds
//! by construction, and this example asserts it per rank.

use saspgemm::prelude::*;

/// One rank's share of the job, written once against the `Comm` trait so
/// the identical code runs on either backend.
fn rank_job<C: Comm>(
    comm: &C,
    a: &sa_sparse::Csc<f64>,
) -> (Option<sa_sparse::Csc<f64>>, String, u64, u64) {
    let (c, report) = spgemm_auto(comm, a, a, &CostModel::slingshot());
    (
        c,
        format!("{:?}", report.choice),
        report.comm.injected_bytes(),
        report.comm.injected_msgs(),
    )
}

fn main() {
    // A structured operand so the tuner has a real decision to make.
    let a = sa_sparse::gen::stencil3d(10, 10, 10, true);
    let p = 4;
    let universe = Universe::new(p);

    println!("== spgemm_auto on {p} ranks, both backends ==");

    let t0 = std::time::Instant::now();
    let sim = universe.run(|comm| rank_job(comm, &a));
    let wall_sim = t0.elapsed();

    let t0 = std::time::Instant::now();
    let thr = universe.run_threads(|comm| rank_job(comm, &a));
    let wall_thr = t0.elapsed();

    // Identical pick, identical product, identical traffic — per rank.
    for (r, (s, t)) in sim.iter().zip(&thr).enumerate() {
        assert_eq!(s.1, t.1, "rank {r}: tuner pick diverged");
        assert_eq!(s.2, t.2, "rank {r}: injected bytes diverged");
        assert_eq!(s.3, t.3, "rank {r}: injected messages diverged");
        assert_eq!(s.0, t.0, "rank {r}: product diverged");
    }
    assert!(sim[0].0.is_some(), "rank 0 gathered C");

    println!("tuner pick           : {}", sim[0].1);
    println!(
        "product nnz (rank 0) : {}",
        sim[0].0.as_ref().unwrap().nnz()
    );
    for (r, (_, _, bytes, msgs)) in sim.iter().enumerate() {
        println!("rank {r} injected      : {bytes} B in {msgs} msgs  (identical on both backends)");
    }
    println!(
        "wall: SimComm {:.1} ms (sum of rank work)  vs  ThreadComm {:.1} ms (concurrent)",
        wall_sim.as_secs_f64() * 1e3,
        wall_thr.as_secs_f64() * 1e3
    );
    println!("reports matched per rank on every metered counter.");
}
