//! Distributed triangle counting with the sparsity-aware 1D SpGEMM.
//!
//! The paper's introduction cites the 1D triangle-counting implementation
//! of Azad, Buluç & Gilbert as one of the prior sparsity-aware attempts the
//! new algorithm improves on. This example counts triangles as
//! `Σ (L·L) ⊙ L` on two graph families and cross-checks the distributed
//! count against the serial one and against a closed form.
//!
//! Run with: `cargo run --release --example triangle_count`

use saspgemm::apps::triangle::{triangles_1d, triangles_serial};
use saspgemm::dist::Plan1D;
use saspgemm::mpisim::Universe;
use saspgemm::sparse::gen::rmat;
use saspgemm::sparse::{Coo, Csc};

/// Complete graph on `n` vertices: exactly C(n,3) triangles.
fn complete(n: usize) -> Csc<f64> {
    let mut coo = Coo::new(n, n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                coo.push(u as u32, v as u32, 1.0);
            }
        }
    }
    coo.to_csc_with(|x, _| x)
}

fn main() {
    // closed-form check: K₁₂ has C(12,3) = 220 triangles
    let k12 = complete(12);
    let expect = 220u64;
    let u = Universe::new(4);
    let k12c = k12.clone();
    let got = u.run(move |comm| triangles_1d(comm, &k12c, &Plan1D::default()))[0];
    println!(
        "K12: serial {} | 1D {} | closed form {expect}",
        triangles_serial(&k12),
        got
    );
    assert_eq!(got, expect);

    // a scale-free-ish RMAT graph (symmetrized inside the generator)
    let a = rmat(12, 8, (0.57, 0.19, 0.19, 0.05), 7);
    let serial = triangles_serial(&a);
    for p in [1, 2, 4, 8] {
        let u = Universe::new(p);
        let a2 = a.clone();
        let got = u.run(move |comm| triangles_1d(comm, &a2, &Plan1D::default()))[0];
        println!("rmat(2^12): P={p} -> {got} triangles (serial {serial})");
        assert_eq!(got, serial, "distributed count must match serial");
    }
    println!("OK");
}
