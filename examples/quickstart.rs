//! Quickstart: the paper's Figure 1 worked example, then a real squaring.
//!
//! Run with: `cargo run --release --example quickstart`

use saspgemm::prelude::*;
use saspgemm::sparse::gen;

fn main() {
    // ------------------------------------------------------------------
    // Part 1 — the Figure 1 example: an 8×8 matrix on 2 ranks, each
    // owning an 8×4 column slice, with 2 fetch blocks per remote rank.
    // ------------------------------------------------------------------
    println!("== Figure 1 walkthrough: 8x8, P=2, block fetch ==");
    let mut coo = Coo::new(8, 8);
    // a small banded-ish pattern so rank 0 needs only part of rank 1's data
    for (r, c) in [
        (0usize, 0usize),
        (2, 0),
        (3, 1),
        (5, 2),
        (0, 3),
        (2, 3),
        (5, 4), // owned by rank 1 (cols 4..8)
        (1, 5),
        (6, 6),
        (3, 7),
    ] {
        coo.push(r as u32, c as u32, 1.0);
    }
    let a = coo.to_csc_with(|x, _| x);

    let universe = Universe::new(2);
    let outputs = universe.run(|comm| {
        let offsets = uniform_offsets(8, 2);
        let da = DistMat1D::from_global(comm, &a, &offsets);
        let db = da.clone();
        // K = 2 blocks per remote rank, exactly as in the figure
        let plan = Plan1D {
            fetch_mode: sa_dist::FetchMode::Block(2),
            ..Default::default()
        };
        let (c, report) = spgemm_1d(comm, &da, &db, &plan);
        (
            comm.rank(),
            report.rdma_msgs,
            report.fetched_bytes,
            report.needed_bytes,
            c.gather(comm),
        )
    });
    for (rank, msgs, fetched, needed, _) in &outputs {
        println!(
            "rank {rank}: {msgs} RDMA messages, fetched {fetched} B (needed {needed} B — block granularity over-fetches, as in the paper's example)"
        );
    }
    let c = outputs[0].4.as_ref().unwrap();
    println!(
        "C = A*A has {} nonzeros (verified against serial: {})",
        c.nnz(),
        {
            let serial = sa_dist::reference::serial_spgemm(&a, &a);
            if serial.max_abs_diff(c) < 1e-12 {
                "match"
            } else {
                "MISMATCH"
            }
        }
    );

    // ------------------------------------------------------------------
    // Part 2 — squaring a structured matrix on 8 ranks with a report.
    // ------------------------------------------------------------------
    println!("\n== Squaring a 3D-stencil matrix (queen-like) on 8 ranks ==");
    let big = gen::stencil3d(20, 20, 20, true);
    println!("A: {}x{}, {} nnz", big.nrows(), big.ncols(), big.nnz());
    let universe = Universe::new(8);
    let reports = universe.run(|comm| {
        let offsets = uniform_offsets(big.ncols(), comm.size());
        let da = DistMat1D::from_global(comm, &big, &offsets);
        let db = da.clone();
        let (c, report) = spgemm_1d(comm, &da, &db, &Plan1D::default());
        (c.local_nnz(), report)
    });
    let total_c_nnz: usize = reports.iter().map(|(n, _)| n).sum();
    let r0 = &reports[0].1;
    println!("C = A^2: {total_c_nnz} nnz across ranks");
    println!(
        "CV/memA = {:.3}  (<0.30 per the paper's §V criterion: no partitioning needed)",
        r0.cv_over_mem
    );
    for (rank, (_, rep)) in reports.iter().enumerate() {
        let b = rep.breakdown;
        println!(
            "rank {rank}: comm {:.2} ms | comp {:.2} ms | other {:.2} ms | fetched {:.1} KB in {} RDMA msgs",
            b.comm_s * 1e3,
            b.comp_s * 1e3,
            b.other_s * 1e3,
            rep.fetched_bytes as f64 / 1e3,
            rep.rdma_msgs
        );
    }
}
