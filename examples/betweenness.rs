//! Betweenness-centrality scenario (§IV-C): batched multi-source Brandes
//! on a scale-free graph, forward search and backward sweep each one
//! distributed SpGEMM per BFS level.
//!
//! Run with: `cargo run --release --example betweenness`

use saspgemm::apps::bc::{bc_batch_1d, bc_serial, pick_sources};
use saspgemm::prelude::*;
use saspgemm::sparse::gen;

fn main() {
    let g = gen::rmat(11, 8, (0.57, 0.19, 0.19, 0.05), 42);
    let n = g.nrows();
    let batch = 64;
    let sources = pick_sources(n, batch, 7);
    println!(
        "approximate BC on an R-MAT graph: {} vertices, {} edges, batch of {} sources",
        n,
        g.nnz() / 2,
        sources.len()
    );

    let universe = Universe::new(8);
    let outcome = {
        let g = &g;
        let sources = &sources;
        universe
            .run(|comm| bc_batch_1d(comm, g, sources, &Plan1D::default()))
            .remove(0)
    };

    println!(
        "forward search: {} levels, per-level SpGEMM times (ms): {:?}",
        outcome.levels,
        outcome
            .times
            .forward_s
            .iter()
            .map(|t| (t * 1e5).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "backward sweep: per-level SpGEMM times (ms): {:?}",
        outcome
            .times
            .backward_s
            .iter()
            .map(|t| (t * 1e5).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // top-10 central vertices
    let mut ranked: Vec<(usize, f64)> = outcome.scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top 10 vertices by (partial) betweenness:");
    for (v, score) in ranked.iter().take(10) {
        println!("  vertex {v}: {score:.1}");
    }

    // cross-check against textbook Brandes
    let reference = bc_serial(&g, &sources);
    let max_err = outcome
        .scores
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
        / reference.iter().cloned().fold(1.0f64, f64::max);
    println!("relative error vs serial Brandes: {max_err:.2e}");
    assert!(max_err < 1e-9);
}
