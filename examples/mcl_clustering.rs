//! Markov clustering (MCL) on a planted-community graph.
//!
//! §II-C1 of the paper names squaring as the bottleneck of HipMCL; this
//! example runs the full MCL pipeline — expansion via the sparsity-aware
//! 1D SpGEMM, inflation/pruning locally — on a stochastic block model with
//! 8 planted communities, and checks how well the recovered clustering
//! matches the ground truth.
//!
//! Run with: `cargo run --release --example mcl_clustering`

use saspgemm::apps::mcl::{mcl_1d, MclConfig};
use saspgemm::dist::Plan1D;
use saspgemm::mpisim::Universe;
use saspgemm::sparse::gen::sbm;

fn main() {
    // MCL with the standard inflation of 2.0 resolves *dense* communities;
    // 100-vertex blocks with ~30 intra-edges per vertex are comfortably
    // inside its granularity (sparser communities fragment — an MCL
    // property, not an implementation artifact).
    let n = 1_200;
    let k = 12;
    let a = sbm(n, k, 30.0, 0.5, false, 42);
    println!(
        "graph: {} vertices, {} edges, {} planted communities",
        n,
        a.nnz() / 2,
        k
    );

    let p = 4;
    let u = Universe::new(p);
    let cfg = MclConfig::default();
    let a2 = a.clone();
    let results = u.run(move |comm| mcl_1d(comm, &a2, &cfg, &Plan1D::default()));
    let (clusters, iters) = &results[0];
    let found = clusters
        .iter()
        .collect::<std::collections::HashSet<_>>()
        .len();
    println!("MCL converged in {iters} iterations; {found} clusters found");

    // ground truth: SBM blocks are contiguous index ranges of size n/k
    let block = n / k;
    let mut agree = 0usize;
    let mut pairs = 0usize;
    // sampled pair-counting F-measure proxy: same-block pairs should share
    // a cluster, cross-block pairs should not
    for i in (0..n).step_by(7) {
        for j in (i + 1..n).step_by(13) {
            let same_truth = i / block == j / block;
            let same_found = clusters[i] == clusters[j];
            pairs += 1;
            if same_truth == same_found {
                agree += 1;
            }
        }
    }
    let rand_index = agree as f64 / pairs as f64;
    println!("pairwise agreement with planted communities (Rand index): {rand_index:.3}");
    assert!(
        rand_index > 0.9,
        "MCL should recover strong planted communities"
    );
    println!("OK");
}
