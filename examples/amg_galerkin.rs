//! AMG setup scenario: build a multilevel hierarchy of Galerkin products
//! `Rᵀ A R` from MIS-2 aggregation, the §IV-B workload (up to 80% of AMG
//! construction time in the paper's motivation).
//!
//! Run with: `cargo run --release --example amg_galerkin`

use saspgemm::apps::restriction::{restriction_operator, restriction_stats};
use saspgemm::prelude::*;
use saspgemm::sparse::gen;

fn main() {
    let p = 8;
    // A fine-level 3D Poisson-like operator (the queen_4147 structure class)
    let mut fine = gen::stencil3d(24, 24, 24, true);
    println!("AMG hierarchy via distributed Galerkin products on {p} ranks");
    println!("level 0: n = {}, nnz = {}", fine.nrows(), fine.nnz());

    let universe = Universe::new(p);
    for level in 1..=4 {
        if fine.nrows() < 200 {
            break;
        }
        // 1. coarse point selection + aggregation (MIS-2, Table III shape)
        let r = restriction_operator(&fine, 42 + level as u64);
        let s = restriction_stats(&r);
        assert!(r.nnz_per_row().iter().all(|&c| c == 1));

        // 2. distributed Galerkin product: RᵀA with the sparsity-aware 1D
        //    algorithm, (RᵀA)R with the outer-product algorithm (Fig. 12's
        //    winner)
        let r_ref = &r;
        let fine_ref = &fine;
        let mut results = universe.run(|comm| {
            let offsets = uniform_offsets(fine_ref.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, fine_ref, &offsets);
            let (coarse, rep) = saspgemm::apps::galerkin::galerkin_product(
                comm,
                &da,
                r_ref,
                saspgemm::apps::galerkin::RightAlgo::Outer,
                &Plan1D::default(),
            );
            (coarse.gather(comm), rep)
        });
        let (gathered, rep) = results.remove(0);
        let coarse = gathered.expect("rank 0 gathers");
        println!(
            "level {level}: n = {} ({:.1}x coarser), nnz = {}, RtA comm: {} RDMA msgs / {:.1} KB fetched",
            coarse.nrows(),
            s.coarsening_ratio,
            coarse.nnz(),
            rep.left.rdma_msgs,
            rep.left.fetched_bytes as f64 / 1e3,
        );
        fine = coarse;
    }
    println!("hierarchy complete — each level one distributed RtA + (RtA)R");
}
